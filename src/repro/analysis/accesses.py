"""Per-step read/write footprint extraction over a translated level.

The analyzer works at two precision tiers over the same state machine
the proof engine uses:

* **Static** (:func:`extract_accesses`): every :class:`~repro.machine.steps.Step`
  is mapped to a list of :class:`Access` records naming the *abstract*
  shared locations it may read or write.  Direct global accesses come
  straight from ``Step.reads_exprs()`` and the assignment targets; an
  access through a pointer is resolved to the globals/allocation sites
  in the pointer's Steensgaard region (:mod:`repro.strategies.regions`),
  exactly the region-based aliasing the proof generator already trusts.

* **Dynamic** (:func:`concrete_footprint`): for one concrete state and
  one enabled transition, evaluate the places the step would actually
  touch, down to individual leaf :class:`~repro.machine.values.Location`
  cells (so ``locked[1]`` and ``locked[2]`` do not conflict).  The
  bounded race scan in :mod:`repro.analysis.robustness` uses this to
  adversarially cross-check the static verdicts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.lang import asts as ast
from repro.lang import types as ty
from repro.lang.resolver import LevelContext
from repro.machine import evaluator as ev
from repro.machine.evaluator import EvalContext, MemoryPlace
from repro.machine.program import StateMachine
from repro.machine.state import ProgramState, UBSignal
from repro.machine.steps import (
    AssignStep,
    CallStep,
    CreateThreadStep,
    ExternSpecStep,
    ExternStep,
    MallocStep,
    SomehowStep,
    Step,
)
from repro.machine.values import Location, Pointer
from repro.strategies.regions import RegionAnalysis, analyze_regions

#: Extern methods that target memory through their first pointer
#: argument.  All of them execute with a drained store buffer (x86 LOCK
#: prefix / fence semantics), so their accesses are *atomic*.
MUTEX_EXTERNS = ("initialize_mutex", "lock", "unlock")
RMW_EXTERNS = ("compare_and_swap", "atomic_exchange", "atomic_fetch_add")

#: Externs whose execution requires (and therefore implies) an empty
#: store buffer — the buffer-draining points of the TSO machine.
DRAINING_EXTERNS = frozenset(
    ("lock", "unlock", "compare_and_swap", "atomic_exchange",
     "atomic_fetch_add", "fence")
)


@dataclass(frozen=True)
class Access:
    """One static shared-memory access of one step.

    ``location`` is an abstract location name: a global variable name,
    ``local:<method>:<name>`` for an address-taken stack variable, or
    ``alloc:<site>`` for a Steensgaard allocation site.  ``atomic``
    accesses are performed with a drained store buffer by a LOCK-style
    extern; ``buffered`` writes go through the x86-TSO store buffer.
    """

    pc: str
    method: str
    kind: str  # "read" | "write"
    location: str
    atomic: bool = False
    buffered: bool = False
    step_desc: str = ""

    def describe(self) -> str:
        flags = []
        if self.atomic:
            flags.append("atomic")
        if self.buffered:
            flags.append("buffered")
        suffix = f" [{','.join(flags)}]" if flags else ""
        return (f"{self.kind} of {self.location} at {self.pc} "
                f"({self.step_desc}){suffix}")


@dataclass
class AccessMap:
    """All static accesses of a level, indexed for the later passes."""

    all: list[Access] = field(default_factory=list)
    by_step: dict[int, list[Access]] = field(default_factory=dict)
    by_location: dict[str, list[Access]] = field(default_factory=dict)
    #: Globals used as lock words by the mutex externs.
    mutex_words: set[str] = field(default_factory=set)
    regions: RegionAnalysis | None = None

    def add(self, step: Step, access: Access) -> None:
        self.all.append(access)
        self.by_step.setdefault(id(step), []).append(access)
        self.by_location.setdefault(access.location, []).append(access)

    def step_accesses(self, step: Step) -> list[Access]:
        return self.by_step.get(id(step), [])

    def touches_memory(self, step: Step) -> bool:
        """Whether the dynamic scan needs to evaluate this step at all."""
        return bool(self.by_step.get(id(step)))


class _Extractor:
    """Walks every step of a machine and records its static accesses."""

    def __init__(self, ctx: LevelContext, machine: StateMachine) -> None:
        self.ctx = ctx
        self.machine = machine
        self.result = AccessMap(regions=analyze_regions(ctx))
        self._region_targets = self._build_region_targets()

    # -- region resolution ---------------------------------------------

    def _build_region_targets(self) -> dict[object, list[str]]:
        """Map each Steensgaard region to the abstract locations whose
        *objects* live in it (the possible targets of a dereference)."""
        regions = self.result.regions
        assert regions is not None
        targets: dict[object, list[str]] = {}
        for loc in sorted(regions.locations):
            if loc.startswith("g:"):
                name = loc[2:]
                g = self.ctx.globals.get(name)
                if g is None or g.ghost:
                    continue
                token = name
            elif loc.startswith("l:"):
                token = "local:" + loc[2:]
            elif loc.startswith("a:"):
                token = "alloc:" + loc[2:]
            else:  # pragma: no cover - unknown kind
                continue
            region = regions.unify.find(("obj", loc))
            targets.setdefault(region, []).append(token)
        return targets

    def _pointee_targets(self, method: str, expr: ast.Expr) -> list[str]:
        """Abstract locations a pointer-valued expression may target."""
        regions = self.result.regions
        assert regions is not None
        if isinstance(expr, ast.AddressOf):
            base = expr.operand
            while isinstance(base, (ast.FieldAccess, ast.Index)):
                base = base.base
            if isinstance(base, ast.Var):
                return self._abstract_of_var(method, base.name)
            return []
        if isinstance(expr, ast.Var):
            local = self.ctx.local(method, expr.name)
            loc = (
                f"l:{method}:{expr.name}" if local is not None
                else f"g:{expr.name}"
            )
            region = regions.unify.find(("pt", loc))
            return list(self._region_targets.get(region, []))
        if isinstance(expr, ast.Binary) and expr.op in ("+", "-"):
            return self._pointee_targets(method, expr.left)
        return []

    def _abstract_of_var(self, method: str, name: str) -> list[str]:
        local = self.ctx.local(method, name)
        if local is not None:
            if local.address_taken:
                return [f"local:{method}:{name}"]
            return []
        g = self.ctx.globals.get(name)
        if g is not None and not g.ghost:
            return [name]
        return []

    # -- expression reads ----------------------------------------------

    def _expr_reads(
        self, method: str, expr: ast.Expr | None, acc: list[str],
        addressed: bool = False,
    ) -> None:
        """Collect the abstract locations read when evaluating *expr*.

        ``addressed`` marks lvalue positions whose own cell is *not*
        read (the target of an assignment, the operand of ``&``): their
        embedded index/pointer subexpressions still are.
        """
        if expr is None:
            return
        if isinstance(expr, ast.Var):
            if not addressed:
                acc.extend(self._abstract_of_var(method, expr.name))
            return
        if isinstance(expr, ast.AddressOf):
            self._expr_reads(method, expr.operand, acc, addressed=True)
            return
        if isinstance(expr, ast.Deref):
            # The pointer cell itself is read...
            self._expr_reads(method, expr.operand, acc)
            # ...and so is the pointee, unless we only take its address.
            if not addressed:
                acc.extend(self._pointee_targets(method, expr.operand))
            return
        if isinstance(expr, ast.Index):
            base_t = getattr(expr.base, "type", None)
            if isinstance(base_t, ty.PtrType):
                self._expr_reads(method, expr.base, acc)
                if not addressed:
                    acc.extend(self._pointee_targets(method, expr.base))
            else:
                self._expr_reads(method, expr.base, acc, addressed)
            self._expr_reads(method, expr.index, acc)
            return
        if isinstance(expr, ast.FieldAccess):
            self._expr_reads(method, expr.base, acc, addressed)
            return
        for child in ast.child_exprs(expr):
            self._expr_reads(method, child, acc)

    # -- lvalue write targets ------------------------------------------

    def _lvalue_targets(self, method: str, lhs: ast.Expr) -> list[str]:
        if isinstance(lhs, ast.Var):
            return self._abstract_of_var(method, lhs.name)
        if isinstance(lhs, ast.Deref):
            return self._pointee_targets(method, lhs.operand)
        if isinstance(lhs, ast.Index):
            base_t = getattr(lhs.base, "type", None)
            if isinstance(base_t, ty.PtrType):
                return self._pointee_targets(method, lhs.base)
            return self._lvalue_targets(method, lhs.base)
        if isinstance(lhs, ast.FieldAccess):
            return self._lvalue_targets(method, lhs.base)
        return []

    # -- per-step extraction -------------------------------------------

    def run(self) -> AccessMap:
        for pc, steps in self.machine.steps_by_pc.items():
            method = self.machine.pcs[pc].method
            for step in steps:
                self._extract_step(pc, method, step)
        return self.result

    def _add(self, step: Step, pc: str, method: str, kind: str,
             locations: Iterable[str], atomic: bool = False,
             buffered: bool = False) -> None:
        desc = type(step).__name__
        for location in dict.fromkeys(locations):
            self.result.add(step, Access(
                pc, method, kind, location, atomic=atomic,
                buffered=buffered, step_desc=desc,
            ))

    def _reads_of(self, method: str, exprs: Iterable[ast.Expr | None],
                  addressed: bool = False) -> list[str]:
        acc: list[str] = []
        for expr in exprs:
            self._expr_reads(method, expr, acc, addressed)
        return acc

    def _extract_step(self, pc: str, method: str, step: Step) -> None:
        if isinstance(step, AssignStep):
            for lhs in step.lhss:
                self._add(step, pc, method, "write",
                          self._lvalue_targets(method, lhs),
                          buffered=not step.tso_bypass)
            reads = self._reads_of(method, step.lhss, addressed=True)
            reads += self._reads_of(method, step.rhss)
            self._add(step, pc, method, "read", reads)
            return
        if isinstance(step, ExternStep):
            self._extract_extern(pc, method, step)
            return
        if isinstance(step, (SomehowStep, ExternSpecStep)):
            spec = step.spec
            for target in spec.modifies:
                self._add(step, pc, method, "write",
                          self._lvalue_targets(method, target))
            reads = self._reads_of(method, spec.modifies, addressed=True)
            reads += self._reads_of(method, spec.requires)
            reads += self._reads_of(method, spec.ensures)
            if isinstance(step, ExternSpecStep):
                reads += self._reads_of(method, step.args)
            self._add(step, pc, method, "read", reads)
            return
        if isinstance(step, MallocStep):
            self._add(step, pc, method, "write",
                      self._lvalue_targets(method, step.lhs),
                      buffered=True)
            reads = self._reads_of(method, [step.lhs], addressed=True)
            reads += self._reads_of(method, [step.count])
            self._add(step, pc, method, "read", reads)
            return
        if isinstance(step, CreateThreadStep):
            if step.lhs is not None:
                self._add(step, pc, method, "write",
                          self._lvalue_targets(method, step.lhs),
                          buffered=True)
                self._add(step, pc, method, "read",
                          self._reads_of(method, [step.lhs],
                                         addressed=True))
            self._add(step, pc, method, "read",
                      self._reads_of(method, step.args))
            return
        # Branch/Assume/Assert/Call/Join/Return/Dealloc: pure readers.
        self._add(step, pc, method, "read",
                  self._reads_of(method, step.reads_exprs()))

    def _extract_extern(self, pc: str, method: str,
                        step: ExternStep) -> None:
        name = step.name
        if name in MUTEX_EXTERNS or name in RMW_EXTERNS:
            targets = self._pointee_targets(method, step.args[0])
            if name in MUTEX_EXTERNS:
                self.result.mutex_words.update(
                    t for t in targets if ":" not in t
                )
            if name != "initialize_mutex":
                self._add(step, pc, method, "read", targets, atomic=True)
            self._add(step, pc, method, "write", targets, atomic=True)
            reads = self._reads_of(method, step.args)
        else:
            reads = self._reads_of(method, step.args)
        if step.lhs is not None:
            self._add(step, pc, method, "write",
                      self._lvalue_targets(method, step.lhs),
                      buffered=True)
            reads += self._reads_of(method, [step.lhs], addressed=True)
        self._add(step, pc, method, "read", reads)


def extract_accesses(ctx: LevelContext, machine: StateMachine) -> AccessMap:
    """Run the static footprint extraction over a translated level."""
    return _Extractor(ctx, machine).run()


# ---------------------------------------------------------------------------
# Dynamic (concrete) footprints


@dataclass(frozen=True, slots=True)
class ConcreteAccess:
    """One leaf-cell access an enabled step would perform.

    ``buffered`` marks writes that go through the firing thread's x86-TSO
    store buffer (plain ``:=`` to a memory place): such a write is
    invisible to every other thread until its drain — the drain, not the
    write, is the conflicting action.  Atomic and ``::=`` stores mutate
    memory directly and are never buffered.
    """

    location: Location
    kind: str  # "read" | "write"
    atomic: bool
    pc: str
    step_desc: str
    buffered: bool = False


def _leaf_locations_of(location: Location, t: ty.Type) -> list[Location]:
    if isinstance(t, ty.ArrayType):
        result: list[Location] = []
        for i in range(t.size):
            result.extend(_leaf_locations_of(location.child(i), t.element))
        return result
    if isinstance(t, ty.StructType):
        result = []
        for i, f in enumerate(t.fields):
            result.extend(_leaf_locations_of(location.child(i), f.type))
        return result
    return [location]


class _FootprintCollector:
    """Evaluates one step's places in one concrete state."""

    def __init__(self, machine: StateMachine, state: ProgramState,
                 tid: int, step: Step, params: dict) -> None:
        self.machine = machine
        self.state = state
        self.tid = tid
        self.step = step
        method = state.thread(tid).top.method
        self.ec = EvalContext(machine.ctx, state, tid, method, params)
        self.out: list[ConcreteAccess] = []

    def _emit(self, place: Any, kind: str, atomic: bool,
              buffered: bool = False) -> None:
        if not isinstance(place, MemoryPlace):
            return
        desc = type(self.step).__name__
        for leaf in _leaf_locations_of(place.location, place.type):
            self.out.append(ConcreteAccess(
                leaf, kind, atomic, self.step.pc, desc,
                buffered=buffered and kind == "write",
            ))

    def _emit_lvalue(self, lhs: ast.Expr | None, kind: str = "write",
                     atomic: bool = False, buffered: bool = False) -> None:
        if lhs is None:
            return
        try:
            place = ev.eval_place(self.ec, lhs)
        except (UBSignal, KeyError, AssertionError):
            return
        self._emit(place, kind, atomic, buffered=buffered)
        self._reads(lhs, addressed=True)

    def _emit_pointer_arg(self, expr: ast.Expr, kinds: tuple[str, ...],
                          atomic: bool = True) -> None:
        try:
            pointer = ev.eval_expr(self.ec, expr)
        except (UBSignal, KeyError):
            return
        if not isinstance(pointer, Pointer):
            return
        for kind in kinds:
            self.out.append(ConcreteAccess(
                pointer.location, kind, atomic, self.step.pc,
                type(self.step).__name__,
            ))

    def _reads(self, expr: ast.Expr | None, addressed: bool = False
               ) -> None:
        """Concrete read cells of *expr* (best effort: UB paths skipped)."""
        if expr is None:
            return
        if isinstance(expr, ast.AddressOf):
            self._reads(expr.operand, addressed=True)
            return
        if isinstance(expr, (ast.Var, ast.Deref, ast.Index,
                             ast.FieldAccess)):
            if isinstance(expr, ast.Deref):
                self._reads(expr.operand)
            elif isinstance(expr, ast.Index):
                self._reads(expr.index)
                base_t = getattr(expr.base, "type", None)
                if isinstance(base_t, ty.PtrType):
                    self._reads(expr.base)
                else:
                    self._reads(expr.base, addressed=True)
            elif isinstance(expr, ast.FieldAccess):
                self._reads(expr.base, addressed=True)
            if addressed:
                return
            try:
                place = ev.eval_place(self.ec, expr)
            except (UBSignal, KeyError, AssertionError):
                return
            self._emit(place, "read", False)
            return
        for child in ast.child_exprs(expr):
            self._reads(child)

    # ------------------------------------------------------------------

    def collect(self) -> list[ConcreteAccess]:
        step = self.step
        if isinstance(step, AssignStep):
            for lhs in step.lhss:
                self._emit_lvalue(lhs, buffered=not step.tso_bypass)
            for rhs in step.rhss:
                self._reads(rhs)
        elif isinstance(step, ExternStep):
            name = step.name
            if name in MUTEX_EXTERNS or name in RMW_EXTERNS:
                kinds = (
                    ("write",) if name == "initialize_mutex"
                    else ("read", "write")
                )
                self._emit_pointer_arg(step.args[0], kinds)
                for arg in step.args[1:]:
                    self._reads(arg)
            else:
                for arg in step.args:
                    self._reads(arg)
            self._emit_lvalue(step.lhs, buffered=True)
        elif isinstance(step, (SomehowStep, ExternSpecStep)):
            spec = step.spec
            for target in spec.modifies:
                self._emit_lvalue(target)
            for expr in list(spec.requires) + list(spec.ensures):
                self._reads(expr)
            if isinstance(step, ExternSpecStep):
                for arg in step.args:
                    self._reads(arg)
        elif isinstance(step, MallocStep):
            self._emit_lvalue(step.lhs, buffered=True)
            self._reads(step.count)
        elif isinstance(step, CreateThreadStep):
            self._emit_lvalue(step.lhs, buffered=True)
            for arg in step.args:
                self._reads(arg)
        elif isinstance(step, CallStep):
            for arg in step.args:
                self._reads(arg)
        else:
            for expr in step.reads_exprs():
                self._reads(expr)
        return self.out


def concrete_footprint(
    machine: StateMachine,
    state: ProgramState,
    tid: int,
    step: Step,
    params: dict,
) -> list[ConcreteAccess]:
    """The leaf cells *step* would touch, fired by *tid* in *state*."""
    thread = state.threads.get(tid)
    if thread is None or not thread.frames:
        return []
    try:
        return _FootprintCollector(machine, state, tid, step,
                                   params).collect()
    except (UBSignal, KeyError):  # pragma: no cover - defensive
        return []


def abstract_name(location: Location) -> str:
    """Map a concrete cell to the static pass's abstract location name."""
    root = location.root
    if root.kind == "global":
        return root.name
    if root.kind == "local":
        return f"local:{root.name}"
    return f"alloc#{root.serial}"
