"""``repro.analysis`` — static race & TSO-robustness analyzer.

The analyzer classifies every shared location of a translated level as
thread-local, lock-protected, atomic, ordered, or racy, flags the
stores whose TSO buffering is observable, and synthesizes candidate
``tso_elim`` ownership predicates — all cross-validated against the
bounded explicit-state explorer so static claims are adversarially
checked before they reach the proof engine.

Entry point: :func:`analyze_level`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang.resolver import LevelContext
from repro.machine.program import StateMachine

from repro.analysis.accesses import AccessMap, extract_accesses
from repro.analysis.independence import (
    IndependenceFacts,
    step_independence,
)
from repro.analysis.lockset import LocksetResult, compute_locksets
from repro.analysis.ownership import (
    OwnershipSuggestion,
    suggest_ownership,
    validate_predicate,
)
from repro.analysis.report import AnalysisReport, Finding, build_report
from repro.analysis.robustness import (
    Classification,
    DynamicScan,
    LocationVerdict,
    RaceWitness,
    TsoWitness,
    classify,
    run_dynamic_scan,
)

__all__ = [
    "AccessMap",
    "AnalysisReport",
    "AnalysisResult",
    "Classification",
    "DynamicScan",
    "Finding",
    "IndependenceFacts",
    "LocationVerdict",
    "LocksetResult",
    "OwnershipSuggestion",
    "RaceWitness",
    "TsoWitness",
    "analyze_level",
    "build_report",
    "classify",
    "compute_locksets",
    "extract_accesses",
    "run_dynamic_scan",
    "step_independence",
    "suggest_ownership",
    "validate_predicate",
]


@dataclass
class AnalysisResult:
    """Everything the analyzer learned about one level."""

    level_name: str
    ctx: LevelContext
    machine: StateMachine
    access_map: AccessMap
    locksets: LocksetResult
    dynamic: DynamicScan | None
    verdicts: dict[str, LocationVerdict]
    suggestions: list[OwnershipSuggestion] = field(default_factory=list)
    #: Name of the memory model the verdicts were computed under.
    memory_model: str = "tso"

    # ------------------------------------------------------------------

    def verdict(self, name: str) -> LocationVerdict | None:
        return self.verdicts.get(name)

    def classification(self, name: str) -> Classification | None:
        verdict = self.verdicts.get(name)
        return verdict.classification if verdict else None

    def racy(self) -> list[str]:
        """Locations still RACY after all cross-checks."""
        return sorted(
            name for name, v in self.verdicts.items()
            if v.classification is Classification.RACY
        )

    def suggestion_for(self, name: str) -> OwnershipSuggestion | None:
        for suggestion in self.suggestions:
            if suggestion.location == name and suggestion.validated:
                return suggestion
        return None

    def is_provably_thread_local(self, name: str) -> bool:
        """The trivial-discharge condition for the tso_elim fast path:
        static thread-locality corroborated by a *complete* dynamic
        scan.  A single-accessor location cannot distinguish TSO from
        SC (a thread reads its own buffered stores), so the ownership
        obligations hold regardless of the predicate."""
        verdict = self.verdicts.get(name)
        return (
            verdict is not None
            and verdict.classification is Classification.THREAD_LOCAL
            and verdict.dynamic == "confirmed"
        )

    def report(self) -> AnalysisReport:
        stats: dict = {
            "globals": len(self.verdicts),
            "accesses": len(self.access_map.all),
            "memory_model": self.memory_model,
        }
        if self.dynamic is not None and self.dynamic.ran:
            stats["dynamic_states"] = self.dynamic.states_visited
            stats["dynamic_complete"] = self.dynamic.complete
        return build_report(
            self.level_name, self.verdicts, self.suggestions, stats
        )


def analyze_level(
    ctx: LevelContext,
    machine: StateMachine | None = None,
    max_states: int = 200_000,
    dynamic: bool = True,
    suggest: bool = True,
    memory_model: str | None = None,
    compiled: bool = True,
) -> AnalysisResult:
    """Run the full analysis pipeline over one level.

    ``dynamic=False`` skips the bounded cross-check (purely static
    verdicts: statically racy locations stay RACY/unchecked).

    ``memory_model`` selects the model the level's machine runs under
    (default ``tso``); a supplied *machine*'s own model wins.  Race
    classification is model-generic — the dynamic scan walks whichever
    state space the model induces — but the weak-memory sensitivity
    pass is per-model: under ``sc`` no store is ever delayed, so no
    location is flagged; under ``tso`` and ``ra`` the store-load
    (SB-shape) witness search runs, since both models observably delay
    plain stores past later loads.
    """
    if machine is None:
        from repro.machine.translator import translate_level

        machine = translate_level(ctx, memory_model=memory_model)
    model_name = machine.memmodel.name
    access_map = extract_accesses(ctx, machine)
    locksets = compute_locksets(machine, access_map)
    scan = (
        run_dynamic_scan(ctx, machine, access_map, max_states,
                         compiled=compiled)
        if dynamic else None
    )
    verdicts = classify(
        ctx, machine, access_map, locksets, scan,
        memory_model=model_name,
    )
    suggestions = (
        suggest_ownership(ctx, machine, access_map, verdicts, max_states,
                          compiled=compiled)
        if suggest else []
    )
    return AnalysisResult(
        level_name=ctx.level.name,
        ctx=ctx,
        machine=machine,
        access_map=access_map,
        locksets=locksets,
        dynamic=scan,
        verdicts=verdicts,
        suggestions=suggestions,
        memory_model=model_name,
    )
