"""Classification of shared locations and TSO store-buffer sensitivity.

The classifier combines three sources of evidence:

* the static footprints of :mod:`repro.analysis.accesses`,
* the Eraser-style locksets of :mod:`repro.analysis.lockset`,
* a bounded **dynamic race scan** that walks the explicit state space
  and looks for two threads whose conflicting accesses to the same
  memory cell are *simultaneously enabled* — the adversarial
  cross-check that separates real races from lockset false positives.

Each non-ghost global lands in one class:

``UNUSED``        no reachable access.
``READ_ONLY``     never written.
``ATOMIC``        a mutex word, or only accessed by LOCK-prefixed /
                  fencing externs (drained store buffer).
``THREAD_LOCAL``  only one thread context can ever touch it.
``LOCK_PROTECTED``a common mutex is held at every access.
``ORDERED``       statically racy, but the complete bounded scan found
                  no simultaneously enabled conflict: accesses are
                  ordered by program logic the lockset pass cannot see
                  (join ordering, ring-buffer indices, hand-built
                  locks).  A "benign race" downgrade, valid only for
                  the explored bounds.
``RACY``          a conflicting access pair was (or could not be ruled
                  out to be) concurrently enabled; carries a witness
                  when confirmed.

The TSO robustness pass then flags, among racy locations, the stores
whose *delayed buffering* is observable: a buffered store to a racy
location followed on a fence-free control path by a read of a
different racy location is the store-load reordering x86-TSO permits
and SC forbids (the SB litmus shape).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.lang.resolver import LevelContext
from repro.machine.program import StateMachine, Transition
from repro.machine.state import ProgramState
from repro.machine.steps import CallStep, ExternStep, Step

from repro.analysis.accesses import (
    Access,
    AccessMap,
    DRAINING_EXTERNS,
    concrete_footprint,
)
from repro.analysis.lockset import LocksetResult


class Classification(Enum):
    UNUSED = "UNUSED"
    READ_ONLY = "READ_ONLY"
    ATOMIC = "ATOMIC"
    THREAD_LOCAL = "THREAD_LOCAL"
    LOCK_PROTECTED = "LOCK_PROTECTED"
    ORDERED = "ORDERED"
    RACY = "RACY"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class RaceWitness:
    """Two simultaneously enabled conflicting accesses to one cell."""

    location: str  # abstract name
    cell: str  # concrete leaf cell, e.g. "&locked.2"
    first_tid: int
    first_pc: str
    first_kind: str
    second_tid: int
    second_pc: str
    second_kind: str

    def describe(self) -> str:
        return (
            f"{self.cell}: t{self.first_tid} {self.first_kind} at "
            f"{self.first_pc} || t{self.second_tid} {self.second_kind} "
            f"at {self.second_pc}"
        )


@dataclass(frozen=True)
class TsoWitness:
    """A buffered racy store followed fence-free by a racy load."""

    store: Access
    load: Access

    def describe(self) -> str:
        return (
            f"buffered store to {self.store.location} at "
            f"{self.store.pc}, then load of {self.load.location} at "
            f"{self.load.pc} with no intervening fence"
        )


@dataclass
class DynamicScan:
    """Result of the bounded simultaneous-enabledness race scan."""

    ran: bool = False
    complete: bool = False
    states_visited: int = 0
    witnesses: dict[str, RaceWitness] = field(default_factory=dict)
    #: abstract name -> tids observed accessing it (enabled steps).
    accessor_tids: dict[str, set[int]] = field(default_factory=dict)

    def refutes(self, location: str) -> bool:
        """A complete scan with no witness refutes a static race."""
        return self.ran and self.complete and location not in self.witnesses

    def corroborates_thread_local(self, location: str) -> bool:
        return (
            self.ran and self.complete
            and len(self.accessor_tids.get(location, ())) <= 1
        )


@dataclass
class LocationVerdict:
    """Final verdict for one shared location."""

    name: str
    classification: Classification
    locks: tuple[str, ...] = ()
    contexts: tuple[str, ...] = ()
    access_count: int = 0
    static_racy: bool = False
    #: "confirmed" | "refuted" | "incomplete" | "unchecked"
    dynamic: str = "unchecked"
    witness: RaceWitness | None = None
    tso: TsoWitness | None = None

    @property
    def tso_sensitive(self) -> bool:
        return self.tso is not None

    def describe(self) -> str:
        label = self.classification.value
        if self.classification is Classification.LOCK_PROTECTED:
            label += "(" + ", ".join(self.locks) + ")"
        return label


# ---------------------------------------------------------------------------
# Dynamic race scan


def _local_method_index(ctx: LevelContext) -> dict[str, list[str]]:
    index: dict[str, list[str]] = {}
    for method, mctx in ctx.method_contexts.items():
        for name, info in mctx.locals.items():
            if info.address_taken:
                index.setdefault(name, []).append(method)
    return index


def run_dynamic_scan(
    ctx: LevelContext,
    machine: StateMachine,
    access_map: AccessMap,
    max_states: int = 200_000,
    compiled: bool = True,
) -> DynamicScan:
    """Walk the bounded state space hunting for simultaneously enabled
    conflicting accesses.  Store-buffer drain transitions count as
    writes of their head cell: a read racing with an in-flight store is
    a race even after the storing step has retired."""
    from repro.explore.explorer import Explorer

    scan = DynamicScan(ran=True)
    local_methods = _local_method_index(ctx)

    def resolve(cell) -> str:
        root = cell.root
        if root.kind == "global":
            return root.name
        if root.kind == "local":
            methods = local_methods.get(root.name, [])
            if len(methods) == 1:
                return f"local:{methods[0]}:{root.name}"
            return f"local:{root.name}"
        return f"alloc#{root.serial}"

    def visit(state: ProgramState, transitions: list[Transition]) -> bool:
        scan.states_visited += 1
        if not state.running:
            return True
        footprints: list[tuple[int, list]] = []
        for tr in transitions:
            if tr.is_drain:
                thread = state.threads[tr.tid]
                if thread.store_buffer:
                    cell = thread.store_buffer[0][0]
                    footprints.append(
                        (tr.tid,
                         [(cell, "write", False, "<drain>", "Drain")])
                    )
                continue
            if not access_map.touches_memory(tr.step):
                continue
            fp = concrete_footprint(
                machine, state, tr.tid, tr.step, tr.params_dict()
            )
            if fp:
                footprints.append((
                    tr.tid,
                    [(a.location, a.kind, a.atomic, a.pc, a.step_desc)
                     for a in fp],
                ))
        for tid, accesses in footprints:
            for cell, _kind, _atomic, _pc, _desc in accesses:
                scan.accessor_tids.setdefault(
                    resolve(cell), set()
                ).add(tid)
        for i, (tid1, acc1) in enumerate(footprints):
            index = {}
            for cell, kind, atomic, pc, desc in acc1:
                index.setdefault(cell, []).append((kind, atomic, pc, desc))
            for tid2, acc2 in footprints[i + 1:]:
                if tid2 == tid1:
                    continue
                for cell, kind2, atomic2, pc2, _desc2 in acc2:
                    for kind1, atomic1, pc1, _desc1 in index.get(cell, ()):
                        if kind1 == "read" and kind2 == "read":
                            continue
                        if atomic1 and atomic2:
                            continue
                        name = resolve(cell)
                        if name not in scan.witnesses:
                            scan.witnesses[name] = RaceWitness(
                                location=name,
                                cell=str(cell),
                                first_tid=tid1,
                                first_pc=pc1,
                                first_kind=kind1,
                                second_tid=tid2,
                                second_pc=pc2,
                                second_kind=kind2,
                            )
        return True

    scan.complete = Explorer(
        machine, max_states, compiled=compiled
    ).walk(visit)
    return scan


# ---------------------------------------------------------------------------
# TSO store-buffer sensitivity


def _successor_index(machine: StateMachine) -> dict[str, list[str]]:
    succ: dict[str, list[str]] = {}
    for step in machine.all_steps():
        targets = []
        if isinstance(step, ExternStep) and step.name in DRAINING_EXTERNS:
            continue  # the buffer is drained: reordering window closes
        if isinstance(step, CallStep):
            entry = machine.method_entry.get(step.method)
            if entry is not None:
                targets.append(entry)
        if step.target is not None:
            targets.append(step.target)
        if targets:
            succ.setdefault(step.pc, []).extend(targets)
    return succ


def find_tso_witnesses(
    machine: StateMachine,
    access_map: AccessMap,
    racy: set[str],
) -> dict[str, TsoWitness]:
    """For each racy location with a buffered store, search the CFG
    forward from the store for a read of a *different* racy location
    with no buffer-draining extern in between — the observable
    store-load reordering of x86-TSO."""
    succ = _successor_index(machine)
    reads_at: dict[str, list[Access]] = {}
    for access in access_map.all:
        # Atomic reads drain the buffer first and cannot be reordered
        # before the store; only plain loads witness the relaxation.
        if (access.kind == "read" and not access.atomic
                and access.location in racy):
            reads_at.setdefault(access.pc, []).append(access)
    witnesses: dict[str, TsoWitness] = {}
    for access in access_map.all:
        if (
            access.kind != "write"
            or not access.buffered
            or access.location not in racy
            or access.location in witnesses
        ):
            continue
        store_step_targets = [
            step.target
            for step in machine.steps_at(access.pc)
            if step.target is not None
        ]
        frontier = list(store_step_targets)
        seen: set[str] = set()
        while frontier:
            pc = frontier.pop()
            if pc in seen:
                continue
            seen.add(pc)
            for load in reads_at.get(pc, ()):
                if load.location != access.location:
                    witnesses[access.location] = TsoWitness(
                        store=access, load=load
                    )
                    frontier = []
                    break
            else:
                frontier.extend(succ.get(pc, ()))
    return witnesses


# ---------------------------------------------------------------------------
# Classification


def classify(
    ctx: LevelContext,
    machine: StateMachine,
    access_map: AccessMap,
    locksets: LocksetResult,
    dynamic: DynamicScan | None = None,
    memory_model: str = "tso",
) -> dict[str, LocationVerdict]:
    """Combine all passes into one verdict per non-ghost global.

    The race classification itself is memory-model-generic (the dynamic
    scan already walked the state space *of the selected model*), but
    the weak-memory sensitivity flags are per-model: under ``sc``
    stores commit in place, the SB reordering cannot occur, and no
    location is flagged; ``tso`` and ``ra`` both delay plain stores
    past later loads of other locations, so the same store-load witness
    search applies to either.
    """
    verdicts: dict[str, LocationVerdict] = {}
    for name, decl in ctx.globals.items():
        if decl.ghost:
            continue
        verdicts[name] = _classify_one(name, access_map, locksets, dynamic)
    if memory_model == "sc":
        return verdicts
    # Only locations that remain RACY can have buffered stores whose
    # delay is observable: an ORDERED location is never concurrently
    # observed, so nothing can see its stores arrive late.
    racy = {
        name for name, v in verdicts.items()
        if v.classification is Classification.RACY
    }
    for name, witness in find_tso_witnesses(
        machine, access_map, racy
    ).items():
        if name in verdicts:
            verdicts[name].tso = witness
    return verdicts


def _classify_one(
    name: str,
    access_map: AccessMap,
    locksets: LocksetResult,
    dynamic: DynamicScan | None,
) -> LocationVerdict:
    accesses = [
        a for a in access_map.by_location.get(name, [])
        if locksets.held_at.get(a.pc) is not None  # reachable only
    ]
    contexts = tuple(sorted(locksets.location_contexts.get(name, ())))
    verdict = LocationVerdict(
        name=name,
        classification=Classification.UNUSED,
        contexts=contexts,
        access_count=len(accesses),
    )
    if not accesses:
        return verdict
    if name in access_map.mutex_words or all(a.atomic for a in accesses):
        verdict.classification = Classification.ATOMIC
        return verdict
    if not any(a.kind == "write" for a in accesses):
        verdict.classification = Classification.READ_ONLY
        return verdict
    if not locksets.is_multithreaded(name):
        verdict.classification = Classification.THREAD_LOCAL
        if dynamic is not None and dynamic.ran:
            verdict.dynamic = (
                "confirmed"
                if dynamic.corroborates_thread_local(name)
                else "incomplete"
            )
        return verdict
    locks = locksets.location_locks.get(name) or frozenset()
    if locks:
        verdict.classification = Classification.LOCK_PROTECTED
        verdict.locks = tuple(sorted(locks))
        return verdict
    # Statically racy: multi-threaded, no common lock.
    verdict.static_racy = True
    verdict.classification = Classification.RACY
    if dynamic is None or not dynamic.ran:
        verdict.dynamic = "unchecked"
        return verdict
    witness = dynamic.witnesses.get(name)
    if witness is not None:
        verdict.classification = Classification.RACY
        verdict.dynamic = "confirmed"
        verdict.witness = witness
    elif dynamic.complete:
        verdict.classification = Classification.ORDERED
        verdict.dynamic = "refuted"
    else:
        verdict.dynamic = "incomplete"
    return verdict
