"""Structured findings for the analyzer, with text and JSON rendering.

A finding couples one shared location's verdict with its evidence: the
witness access pair for a confirmed race, the store/load pair for a
TSO-sensitivity flag, and any validated ownership suggestion.  Severity
is ordinal:

``high``    confirmed race (dynamic witness in hand).
``medium``  statically racy but not cross-checked (no/partial scan).
``low``     TSO-sensitivity flag, benign-race downgrade notes.
``info``    everything else (classification bookkeeping).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.analysis.ownership import OwnershipSuggestion
from repro.analysis.robustness import Classification, LocationVerdict

_SEVERITY_ORDER = {"high": 0, "medium": 1, "low": 2, "info": 3}


@dataclass
class Finding:
    severity: str
    location: str
    classification: str
    message: str
    witness: str | None = None
    tso: str | None = None
    suggestion: str | None = None

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "severity": self.severity,
            "location": self.location,
            "classification": self.classification,
            "message": self.message,
        }
        if self.witness:
            data["witness"] = self.witness
        if self.tso:
            data["tso_witness"] = self.tso
        if self.suggestion:
            data["suggestion"] = self.suggestion
        return data


@dataclass
class AnalysisReport:
    level: str
    findings: list[Finding] = field(default_factory=list)
    stats: dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------

    @property
    def racy_locations(self) -> list[str]:
        return sorted(
            f.location for f in self.findings
            if f.classification == Classification.RACY.value
        )

    def sorted_findings(self) -> list[Finding]:
        return sorted(
            self.findings,
            key=lambda f: (_SEVERITY_ORDER.get(f.severity, 9), f.location),
        )

    # ------------------------------------------------------------------

    def render_text(self) -> str:
        lines = [f"analysis of level {self.level}:"]
        for f in self.sorted_findings():
            lines.append(
                f"  [{f.severity:<6}] {f.location}: "
                f"{f.classification} — {f.message}"
            )
            if f.witness:
                lines.append(f"           witness: {f.witness}")
            if f.tso:
                lines.append(f"           tso: {f.tso}")
            if f.suggestion:
                lines.append(f"           suggest: {f.suggestion}")
        if self.stats:
            scan = self.stats.get("dynamic_states")
            if scan is not None:
                coverage = (
                    "complete" if self.stats.get("dynamic_complete")
                    else "INCOMPLETE"
                )
                lines.append(
                    f"  dynamic cross-check: {scan} states "
                    f"({coverage})"
                )
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps(
            {
                "level": self.level,
                "findings": [f.to_dict() for f in self.sorted_findings()],
                "stats": self.stats,
            },
            indent=2,
            sort_keys=True,
        )


def build_report(
    level: str,
    verdicts: dict[str, LocationVerdict],
    suggestions: list[OwnershipSuggestion],
    stats: dict[str, Any] | None = None,
) -> AnalysisReport:
    suggestion_of = {
        s.location: s for s in suggestions if s.validated
    }
    report = AnalysisReport(level=level, stats=dict(stats or {}))
    for name, verdict in sorted(verdicts.items()):
        report.findings.append(
            _finding_of(verdict, suggestion_of.get(name))
        )
    return report


def _finding_of(
    verdict: LocationVerdict,
    suggestion: OwnershipSuggestion | None,
) -> Finding:
    cls = verdict.classification
    witness = verdict.witness.describe() if verdict.witness else None
    tso = verdict.tso.describe() if verdict.tso else None
    suggest_text = None
    if suggestion is not None:
        suggest_text = (
            "no predicate needed (thread-local)"
            if suggestion.predicate is None
            else f'tso_elim {verdict.name} "{suggestion.predicate}"'
        )
    if cls is Classification.RACY:
        if verdict.dynamic == "confirmed":
            severity = "high"
            message = (
                "data race confirmed by the bounded dynamic scan"
            )
        else:
            severity = "medium"
            message = (
                "statically racy; dynamic cross-check "
                f"{verdict.dynamic}"
            )
    elif cls is Classification.ORDERED:
        severity = "low"
        message = (
            "statically racy, but no conflicting accesses are ever "
            "simultaneously enabled in the bounded state space "
            "(ordered by program logic)"
        )
    elif cls is Classification.LOCK_PROTECTED:
        severity = "info"
        message = "consistently protected by " + ", ".join(verdict.locks)
    elif cls is Classification.THREAD_LOCAL:
        severity = "info"
        message = "accessed by a single thread context"
        if verdict.dynamic == "confirmed":
            message += " (dynamically corroborated)"
    elif cls is Classification.ATOMIC:
        severity = "info"
        message = "accessed only with drained-store-buffer atomics"
    elif cls is Classification.READ_ONLY:
        severity = "info"
        message = "never written after initialization"
    else:
        severity = "info"
        message = "no reachable accesses"
    if tso and severity in ("info",):
        severity = "low"
    return Finding(
        severity=severity,
        location=verdict.name,
        classification=cls.value,
        message=message,
        witness=witness,
        tso=tso,
        suggestion=suggest_text,
    )
