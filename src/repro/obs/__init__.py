"""``repro.obs`` — observability for the verification pipeline.

A zero-dependency tracing/metrics/profiling layer: the toolchain's
heavy machinery (lemma generation, farm discharge, state-space
exploration, bounded proving) records *where its time and states went*
as hierarchical spans plus counters and histograms, emitted as JSONL.

Two halves:

* :mod:`repro.obs.core` — the process-wide :data:`OBS` observer the
  instrumented hot sites talk to.  Disabled by default; one boolean
  guard per batched event keeps the disabled-mode cost negligible
  (measured by ``benchmarks/bench_obs_overhead.py``).
* :mod:`repro.obs.stats` — trace aggregation behind ``armada stats``:
  per-obligation and per-phase tables, text and ``--json``.

Entry points: ``armada verify --trace FILE`` records a run;
``armada stats FILE`` aggregates it.
"""

from __future__ import annotations

from repro.obs.core import (  # noqa: F401
    KIND_CHAIN,
    KIND_OBLIGATION,
    KIND_PHASE,
    KIND_PROOF,
    KIND_STRATEGY,
    OBS,
    Observer,
    TRACE_FORMAT,
)
from repro.obs.stats import (  # noqa: F401
    TraceError,
    TraceStats,
    aggregate,
    aggregate_file,
    load_trace,
)
