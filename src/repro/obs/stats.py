"""Trace aggregation: JSONL traces → per-obligation/per-phase tables.

This is the analysis half of :mod:`repro.obs`: it reads a trace written
by ``armada verify --trace FILE`` and reduces it to the report the
``armada stats`` subcommand renders — how many obligations ran, where
their wall-clock went phase by phase, and what the counters/histograms
accumulated.  Output ordering is deterministic (rows sort by label, key
sets are stable), so two traces of the same program diff cleanly and
the aggregate doubles as a regression fixture.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.obs.core import (
    KIND_CHAIN,
    KIND_OBLIGATION,
    KIND_PHASE,
    KIND_PROOF,
    KIND_STRATEGY,
)

#: Fixed rendering order for the span-kind rows of the phase table.
_KIND_ORDER = (KIND_CHAIN, KIND_PROOF, KIND_STRATEGY, KIND_OBLIGATION)


class TraceError(Exception):
    """A trace file that cannot be read or parsed."""


def load_trace(path: str) -> list[dict]:
    """Parse one JSONL trace file into its records.

    Blank lines are skipped; a malformed line raises :class:`TraceError`
    (a trace is machine-written — corruption should fail loudly).
    """
    records: list[dict] = []
    try:
        with open(path, encoding="utf-8") as handle:
            for number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError as error:
                    raise TraceError(
                        f"{path}:{number}: not valid JSON ({error})"
                    )
                if not isinstance(record, dict):
                    raise TraceError(
                        f"{path}:{number}: expected an object"
                    )
                records.append(record)
    except OSError as error:
        raise TraceError(f"cannot read {path}: {error}")
    return records


@dataclass
class TraceStats:
    """The aggregate of one trace (the ``armada stats`` payload)."""

    events: int = 0
    format: str | None = None
    chain: dict | None = None
    proofs: list[dict] = field(default_factory=list)
    obligations: list[dict] = field(default_factory=list)
    phases: list[dict] = field(default_factory=list)
    counters: dict = field(default_factory=dict)
    histograms: dict = field(default_factory=dict)
    #: Distinct memory-model names tagged on the trace's spans.
    memory_models: list[str] = field(default_factory=list)

    # ------------------------------------------------------------------

    @property
    def obligation_total(self) -> int:
        return len(self.obligations)

    @property
    def obligation_cached(self) -> int:
        return sum(1 for row in self.obligations if row["cached"])

    def to_dict(self) -> dict:
        """The stable ``--json`` schema."""
        return {
            "format": self.format,
            "events": self.events,
            "chain": self.chain,
            "proofs": self.proofs,
            "obligations": {
                "total": self.obligation_total,
                "cached": self.obligation_cached,
                "executed": self.obligation_total - self.obligation_cached,
                "seconds": round(
                    sum(row["seconds"] for row in self.obligations), 6
                ),
                "rows": self.obligations,
            },
            "phases": self.phases,
            "counters": self.counters,
            "histograms": self.histograms,
            "memory_models": self.memory_models,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    # ------------------------------------------------------------------

    def render_text(self) -> str:
        lines: list[str] = [f"trace: {self.events} events"
                            + (f" [{self.format}]" if self.format else "")]
        if self.chain is not None:
            lines.append(
                f"chain: {self.chain['name']} "
                f"({self.chain['seconds']:.3f}s)"
            )
        if self.memory_models:
            lines.append(
                "memory model: " + ", ".join(self.memory_models)
            )
        for row in self.proofs:
            lines.append(
                f"  proof {row['name']} [{row.get('low', '?')} -> "
                f"{row.get('high', '?')}]: {row['seconds']:.3f}s"
            )
        lines.append(
            f"obligations: {self.obligation_total} "
            f"({self.obligation_cached} from cache, "
            f"{self.obligation_total - self.obligation_cached} executed)"
        )
        if self.phases:
            lines.append("per-phase totals:")
            width = max(len(row["phase"]) for row in self.phases)
            lines.append(
                f"  {'phase'.ljust(width)}  {'spans':>6}  {'seconds':>9}"
            )
            for row in self.phases:
                lines.append(
                    f"  {row['phase'].ljust(width)}  "
                    f"{row['spans']:>6}  {row['seconds']:>9.3f}"
                )
        if self.obligations:
            lines.append("per-obligation:")
            for row in sorted(
                self.obligations, key=lambda r: -r["seconds"]
            )[:15]:
                mark = "cache" if row["cached"] else "ran"
                lines.append(
                    f"  {row['seconds']:>9.3f}s  [{mark:>5}]  "
                    f"{row['label']}"
                )
            hidden = len(self.obligations) - 15
            if hidden > 0:
                lines.append(f"  ... {hidden} more")
        if self.counters:
            lines.append("counters:")
            for name in sorted(self.counters):
                lines.append(f"  {name} = {self.counters[name]}")
        if self.histograms:
            lines.append("histograms:")
            for name in sorted(self.histograms):
                h = self.histograms[name]
                lines.append(
                    f"  {name}: n={h['count']} sum={h['sum']:.6f} "
                    f"min={h['min']:.6f} max={h['max']:.6f}"
                )
        return "\n".join(lines)


def aggregate(records: list[dict]) -> TraceStats:
    """Reduce trace records to a :class:`TraceStats`."""
    stats = TraceStats(events=len(records))
    phase_totals: dict[str, list] = {}  # name -> [spans, seconds]
    models: set[str] = set()
    for record in records:
        rtype = record.get("type")
        if rtype == "meta":
            stats.format = record.get("format")
        elif rtype == "span":
            _fold_span(stats, phase_totals, record)
            model = (record.get("attrs") or {}).get("memory_model")
            if model:
                models.add(str(model))
        elif rtype == "counters":
            _merge_counters(stats, record.get("counters") or {})
            _merge_histograms(stats, record.get("histograms") or {})
    stats.obligations.sort(key=lambda row: row["label"])
    stats.proofs.sort(key=lambda row: row["name"])
    ordered: list[dict] = []
    for key in _KIND_ORDER:
        if key in phase_totals:
            spans, seconds = phase_totals.pop(key)
            ordered.append({
                "phase": key, "spans": spans,
                "seconds": round(seconds, 6),
            })
    for key in sorted(phase_totals):
        spans, seconds = phase_totals[key]
        ordered.append({
            "phase": key, "spans": spans, "seconds": round(seconds, 6),
        })
    stats.phases = ordered
    stats.memory_models = sorted(models)
    return stats


def aggregate_file(path: str) -> TraceStats:
    return aggregate(load_trace(path))


def _fold_span(stats: TraceStats, phase_totals: dict,
               record: dict) -> None:
    kind = record.get("kind")
    name = record.get("name", "")
    seconds = float(record.get("seconds") or 0.0)
    counters = record.get("counters") or {}
    histograms = record.get("histograms") or {}
    _merge_counters(stats, counters)
    _merge_histograms(stats, histograms)
    if kind == KIND_PHASE:
        key = name
    else:
        key = kind if isinstance(kind, str) else "unknown"
    cells = phase_totals.setdefault(key, [0, 0.0])
    cells[0] += 1
    cells[1] += seconds
    if kind == KIND_CHAIN and stats.chain is None:
        stats.chain = {"name": name, "seconds": round(seconds, 6)}
    elif kind == KIND_PROOF:
        attrs = record.get("attrs") or {}
        stats.proofs.append({
            "name": name,
            "low": attrs.get("low"),
            "high": attrs.get("high"),
            "seconds": round(seconds, 6),
        })
    elif kind == KIND_OBLIGATION:
        attrs = record.get("attrs") or {}
        stats.obligations.append({
            "label": name,
            "seconds": round(seconds, 6),
            "cached": bool(attrs.get("cached")),
            "counters": dict(counters),
        })


def _merge_counters(stats: TraceStats, counters: dict) -> None:
    for name, value in counters.items():
        stats.counters[name] = stats.counters.get(name, 0) + value


def _merge_histograms(stats: TraceStats, histograms: dict) -> None:
    for name, summary in histograms.items():
        merged = stats.histograms.get(name)
        if merged is None:
            stats.histograms[name] = {
                "count": summary.get("count", 0),
                "sum": summary.get("sum", 0.0),
                "min": summary.get("min", 0.0),
                "max": summary.get("max", 0.0),
            }
            continue
        merged["count"] += summary.get("count", 0)
        merged["sum"] += summary.get("sum", 0.0)
        merged["min"] = min(merged["min"], summary.get("min", 0.0))
        merged["max"] = max(merged["max"], summary.get("max", 0.0))
