"""The observer: hierarchical spans, counters, and histograms.

One module-level :data:`OBS` instance serves the whole process.  It is
**disabled by default**, and every instrumentation site in the hot
paths guards itself with a single attribute read::

    if OBS.enabled:
        OBS.count("explorer.states_admitted", admitted)

so the disabled-mode cost is one boolean test per *batched* event (hot
loops accumulate locally and emit once — see
``benchmarks/bench_obs_overhead.py`` for the measured bound).

Spans
-----
A span is one timed region of the verification pipeline.  Spans nest
via per-thread stacks, producing the hierarchy::

    chain  >  proof (level pair)  >  strategy
    obligation  >  phase (prover / explore)

Obligation spans are created by the farm workers, possibly on worker
threads or in worker processes, so they are parented to whatever span
is active *on that thread* (none, for pool threads) — consumers group
by ``kind``, not by reconstructing one global tree.

Counters and histograms attach to the innermost active span of the
emitting thread (falling back to a process-global accumulator emitted
at :meth:`Observer.disable`), which is what lets ``armada stats``
attribute prover assignments or explorer states to the obligation that
caused them.

Trace format (JSONL, one object per line)
-----------------------------------------
* ``{"type": "meta", "format": "armada-trace/1"}`` — first line.
* ``{"type": "span", "id": int, "parent": int|null, "kind": str,
  "name": str, "seconds": float, "attrs": {...}, "counters": {...},
  "histograms": {name: {"count", "sum", "min", "max"}}}`` — emitted
  when the span closes.
* ``{"type": "counters", "counters": {...}, "histograms": {...}}`` —
  the process-global accumulators, emitted by :meth:`disable`.

Every line is flushed as written, so a trace is readable mid-run and a
forked worker process never inherits buffered partial lines.

Process safety
--------------
Farm worker processes do not write to the parent's file: any emission
from a process other than the one that called :meth:`enable` is
transparently redirected to a per-worker shard
(``<trace>.shards/shard-<pid>.jsonl``); the scheduler merges shards
back into the main trace (re-keying span ids) after each process-pool
round via :meth:`merge_shards`.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any

TRACE_FORMAT = "armada-trace/1"

#: Span kinds, outermost to innermost (documentation, not enforcement).
KIND_CHAIN = "chain"
KIND_PROOF = "proof"
KIND_STRATEGY = "strategy"
KIND_OBLIGATION = "obligation"
KIND_PHASE = "phase"


class _NullSpan:
    """Shared no-op context manager returned while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _Span:
    """One live span; emitted as a single JSONL record on exit."""

    __slots__ = ("_obs", "id", "parent", "name", "kind", "attrs",
                 "counters", "histograms", "_started")

    def __init__(self, obs: "Observer", name: str, kind: str,
                 attrs: dict) -> None:
        self._obs = obs
        self.name = name
        self.kind = kind
        self.attrs = attrs
        self.counters: dict[str, int | float] = {}
        #: name -> [count, sum, min, max]
        self.histograms: dict[str, list] = {}
        self.id = -1
        self.parent: int | None = None
        self._started = 0.0

    def __enter__(self) -> "_Span":
        obs = self._obs
        stack = obs._stack()
        self.parent = stack[-1].id if stack else None
        with obs._lock:
            obs._next_id += 1
            self.id = obs._next_id
        stack.append(self)
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc: Any) -> None:
        elapsed = time.perf_counter() - self._started
        stack = self._obs._stack()
        if stack and stack[-1] is self:
            stack.pop()
        elif self in stack:  # unwound out of order (exception path)
            stack.remove(self)
        self._obs._emit({
            "type": "span",
            "id": self.id,
            "parent": self.parent,
            "kind": self.kind,
            "name": self.name,
            "seconds": round(elapsed, 6),
            "attrs": self.attrs,
            "counters": self.counters,
            "histograms": {
                name: _histogram_summary(cells)
                for name, cells in self.histograms.items()
            },
        })


def _histogram_summary(cells: list) -> dict:
    count, total, lo, hi = cells
    return {
        "count": count,
        "sum": round(total, 6),
        "min": round(lo, 6),
        "max": round(hi, 6),
    }


def _observe_into(histograms: dict[str, list], name: str,
                  value: float) -> None:
    cells = histograms.get(name)
    if cells is None:
        histograms[name] = [1, value, value, value]
        return
    cells[0] += 1
    cells[1] += value
    if value < cells[2]:
        cells[2] = value
    if value > cells[3]:
        cells[3] = value


class Observer:
    """Process-wide tracing/metrics sink (see module docstring)."""

    def __init__(self) -> None:
        self.enabled = False
        self._path: str | None = None
        self._file = None
        self._lock = threading.Lock()
        self._next_id = 0
        self._tls = threading.local()
        self._pid = os.getpid()
        self._is_shard = False
        self._global_counters: dict[str, int | float] = {}
        self._global_histograms: dict[str, list] = {}

    # ------------------------------------------------------------------
    # lifecycle

    def enable(self, path: str | os.PathLike) -> None:
        """Start tracing to *path* (truncates any existing file)."""
        if self.enabled:
            raise RuntimeError("observer is already enabled")
        self._path = os.fspath(path)
        self._file = open(self._path, "w", encoding="utf-8")
        self._pid = os.getpid()
        self._is_shard = False
        self._next_id = 0
        self._global_counters = {}
        self._global_histograms = {}
        self._tls = threading.local()
        self.enabled = True
        self._emit({"type": "meta", "format": TRACE_FORMAT})

    def disable(self) -> None:
        """Flush global accumulators, merge leftover shards, close."""
        if not self.enabled:
            return
        if not self._is_shard:
            self.merge_shards()
            self._emit({
                "type": "counters",
                "counters": dict(self._global_counters),
                "histograms": {
                    name: _histogram_summary(cells)
                    for name, cells in self._global_histograms.items()
                },
            })
        self.enabled = False
        handle, self._file = self._file, None
        if handle is not None:
            try:
                handle.close()
            except OSError:
                pass
        self._path = None

    def enable_shard(self, shard_dir: str) -> None:
        """Trace into a per-process shard (worker-process entry point).

        Used by spawned worker processes, which do not inherit the
        parent observer; forked workers are redirected automatically by
        :meth:`_emit`.
        """
        os.makedirs(shard_dir, exist_ok=True)
        self._path = os.path.join(
            shard_dir, f"shard-{os.getpid()}.jsonl"
        )
        self._file = open(self._path, "a", encoding="utf-8")
        self._pid = os.getpid()
        self._is_shard = True
        self._tls = threading.local()
        self.enabled = True

    # ------------------------------------------------------------------
    # recording

    def span(self, name: str, kind: str = KIND_PHASE,
             **attrs: Any) -> "_Span | _NullSpan":
        """A context manager timing one region; no-op when disabled."""
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name, kind, attrs)

    def count(self, name: str, n: int | float = 1) -> None:
        """Add *n* to a counter on the innermost span (or globally)."""
        if not self.enabled:
            return
        stack = self._stack()
        if stack:
            counters = stack[-1].counters
            counters[name] = counters.get(name, 0) + n
        else:
            with self._lock:
                self._global_counters[name] = (
                    self._global_counters.get(name, 0) + n
                )

    def observe(self, name: str, value: float) -> None:
        """Record one histogram observation (count/sum/min/max)."""
        if not self.enabled:
            return
        stack = self._stack()
        if stack:
            _observe_into(stack[-1].histograms, name, value)
        else:
            with self._lock:
                _observe_into(self._global_histograms, name, value)

    # ------------------------------------------------------------------
    # process shards

    def shard_dir(self) -> str | None:
        """Where worker processes of this trace park their shards."""
        if self._path is None:
            return None
        base = self._path
        if self._is_shard:
            base = os.path.dirname(base) or "."
            return base
        return base + ".shards"

    def merge_shards(self) -> int:
        """Fold worker shard files into the main trace.

        Span ids are re-keyed into the parent's id space (parents that
        point outside a shard are dropped to ``null``); shard files are
        deleted after merging.  Returns the number of merged records.
        """
        if not self.enabled or self._is_shard:
            return 0
        directory = self.shard_dir()
        if directory is None or not os.path.isdir(directory):
            return 0
        merged = 0
        for name in sorted(os.listdir(directory)):
            path = os.path.join(directory, name)
            remap: dict[int, int] = {}
            try:
                with open(path, encoding="utf-8") as handle:
                    for line in handle:
                        line = line.strip()
                        if not line:
                            continue
                        try:
                            record = json.loads(line)
                        except ValueError:
                            continue
                        if record.get("type") == "span":
                            old = record.get("id")
                            with self._lock:
                                self._next_id += 1
                                new = self._next_id
                            if isinstance(old, int):
                                remap[old] = new
                            record["id"] = new
                            record["parent"] = remap.get(
                                record.get("parent")
                            )
                        self._emit(record)
                        merged += 1
            except OSError:
                continue
            try:
                os.unlink(path)
            except OSError:
                pass
        try:
            os.rmdir(directory)
        except OSError:
            pass
        return merged

    # ------------------------------------------------------------------
    # internals

    def _stack(self) -> list:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    def _become_shard(self) -> None:
        """A forked worker inherited the parent's observer: redirect
        every subsequent write to this process's own shard file."""
        shard_dir = self.shard_dir()
        # Drop the inherited handle without closing it: every line was
        # flushed when written, and the parent still owns the file.
        self._file = None
        if shard_dir is None:
            self.enabled = False
            return
        self.enable_shard(shard_dir)

    def _emit(self, record: dict) -> None:
        if os.getpid() != self._pid:
            self._become_shard()
            if not self.enabled:
                return
        line = json.dumps(record, sort_keys=True, default=str)
        with self._lock:
            handle = self._file
            if handle is None:
                return
            handle.write(line + "\n")
            handle.flush()


#: The process-wide observer every instrumentation site talks to.
OBS = Observer()
