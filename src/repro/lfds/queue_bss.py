"""Pure-Python port of the liblfds 7.1.1 bounded single-producer
single-consumer queue (``lfds711_queue_bounded_singleproducer_
singleconsumer``), the unverified baseline of Figure 12.

The algorithm is the classic power-of-two ring with separate read and
write indices.  liblfds masks indices with ``size - 1``; the Armada
port of §6.4 "uses modulo operators instead of bitmask operators, to
avoid invoking bit-vector reasoning", so we provide both variants
(the paper's *liblfds* and *liblfds-modulo* bars).

On x86-TSO the element store becomes visible before the index store
(FIFO store buffers), which is what makes the algorithm correct with
only compiler barriers; in CPython the GIL provides at least that much
ordering, so the port is faithful to the algorithm's structure.
"""

from __future__ import annotations

from typing import Any


class QueueFullError(Exception):
    """Raised by checked enqueue on a full queue."""


class QueueEmptyError(Exception):
    """Raised by checked dequeue on an empty queue."""


class BoundedSPSCQueue:
    """The liblfds-style bounded SPSC queue, bitmask variant.

    ``size`` must be a power of two.  One thread may enqueue and one
    (other) thread may dequeue concurrently, with no locks.
    """

    __slots__ = ("_elements", "_mask", "_read_index", "_write_index",
                 "_size")

    def __init__(self, size: int) -> None:
        if size < 2 or size & (size - 1):
            raise ValueError("queue size must be a power of two >= 2")
        self._size = size
        self._elements: list[Any] = [None] * size
        self._mask = size - 1
        self._read_index = 0
        self._write_index = 0

    # -- liblfds-style unchecked operations ------------------------------

    def try_enqueue(self, value: Any) -> bool:
        """Producer side: returns False when the ring is full."""
        write_index = self._write_index
        next_index = (write_index + 1) & self._mask
        if next_index == self._read_index:
            return False
        self._elements[write_index] = value
        # On x86-TSO the store buffer is FIFO, so the element write
        # above becomes visible before the index publication below.
        self._write_index = next_index
        return True

    def try_dequeue(self) -> tuple[bool, Any]:
        """Consumer side: returns (False, None) when empty."""
        read_index = self._read_index
        if read_index == self._write_index:
            return False, None
        value = self._elements[read_index]
        self._read_index = (read_index + 1) & self._mask
        return True, value

    # -- checked wrappers -------------------------------------------------

    def enqueue(self, value: Any) -> None:
        if not self.try_enqueue(value):
            raise QueueFullError

    def dequeue(self) -> Any:
        ok, value = self.try_dequeue()
        if not ok:
            raise QueueEmptyError
        return value

    # -- introspection (single-threaded use only) --------------------------

    def __len__(self) -> int:
        return (self._write_index - self._read_index) & self._mask

    @property
    def capacity(self) -> int:
        """Usable capacity (one slot is sacrificed to distinguish full
        from empty, as in liblfds)."""
        return self._size - 1

    def is_empty(self) -> bool:
        return self._read_index == self._write_index

    def is_full(self) -> bool:
        return ((self._write_index + 1) & self._mask) == self._read_index


class BoundedSPSCQueueModulo(BoundedSPSCQueue):
    """The modulo variant (*liblfds-modulo*): identical except indices
    advance with ``% size`` instead of ``& (size - 1)``.  This is the
    arithmetic the verified Armada port uses (§6.4)."""

    __slots__ = ()

    def __init__(self, size: int) -> None:
        # Modulo arithmetic does not require a power of two, but we keep
        # the restriction so the two variants are comparable.
        super().__init__(size)

    def try_enqueue(self, value: Any) -> bool:
        write_index = self._write_index
        next_index = (write_index + 1) % self._size
        if next_index == self._read_index:
            return False
        self._elements[write_index] = value
        self._write_index = next_index
        return True

    def try_dequeue(self) -> tuple[bool, Any]:
        read_index = self._read_index
        if read_index == self._write_index:
            return False, None
        value = self._elements[read_index]
        self._read_index = (read_index + 1) % self._size
        return True, value

    def __len__(self) -> int:
        return (self._write_index - self._read_index) % self._size

    def is_full(self) -> bool:
        return ((self._write_index + 1) % self._size) == self._read_index
