"""Pure-Python liblfds substrate: the unverified baseline queue of
Figure 12, in bitmask and modulo variants, plus benchmark harnesses."""

from repro.lfds.benchmark import (  # noqa: F401
    ThroughputResult,
    single_thread_throughput,
    two_thread_throughput,
)
from repro.lfds.queue_bss import (  # noqa: F401
    BoundedSPSCQueue,
    BoundedSPSCQueueModulo,
    QueueEmptyError,
    QueueFullError,
)
