"""The verified Armada port of the liblfds queue, for Figure 12.

This is the §6.4 artifact on its performance side: the same bounded
SPSC ring written in core Armada ("uses modulo operators instead of
bitmask operators, to avoid invoking bit-vector reasoning"), compiled
by the two back ends:

* the SC backend — the paper's "Armada (GCC)" bar;
* the TSO-faithful backend — the paper's "Armada (CompCertTSO)" bar.

The harness drives the compiled module exactly like
:func:`repro.lfds.benchmark.single_thread_throughput` drives the
native-Python liblfds port, so the four Figure 12 bars are comparable.
"""

from __future__ import annotations

import time

from repro.compiler.pybackend import CompiledProgram, compile_to_python
from repro.lang.frontend import check_level
from repro.lfds.benchmark import ThroughputResult

#: The Armada source of the queue port (core subset; one shared access
#: per statement, fences at the liblfds barrier points).
ARMADA_QUEUE_SOURCE = """
level ArmadaQueue {
  var elements: uint64[512];
  var read_index: uint32 := 0;
  var write_index: uint32 := 0;

  uint32 try_enqueue(v: uint64) {
    var wi: uint32 := 0;
    var ri: uint32 := 0;
    var nxt: uint32 := 0;
    wi := write_index;
    nxt := (wi + 1) % 512;
    ri := read_index;
    if (nxt == ri) {
      return 0;
    }
    elements[wi] := v;
    fence();
    write_index := nxt;
    return 1;
  }

  uint64 try_dequeue() {
    var ri: uint32 := 0;
    var wi: uint32 := 0;
    var x: uint64 := 0;
    ri := read_index;
    wi := write_index;
    if (ri == wi) {
      return 0;
    }
    x := elements[ri];
    fence();
    read_index := (ri + 1) % 512;
    return x;
  }

  void main() {
    var ok: uint32 := 0;
    var x: uint64 := 0;
    ok := try_enqueue(41);
    ok := try_enqueue(42);
    x := try_dequeue();
    print_uint64(x);
    x := try_dequeue();
    print_uint64(x);
  }
}
"""

QUEUE_SIZE = 512


def compile_port(mode: str) -> CompiledProgram:
    """Compile the Armada queue with the given backend mode
    (``"sc"`` = GCC analogue, ``"tso"`` = CompCertTSO analogue)."""
    ctx = check_level(ARMADA_QUEUE_SOURCE)
    return compile_to_python(ctx, mode)


def throughput(mode: str, operations: int = 100_000) -> ThroughputResult:
    """Figure 12 harness: alternate enqueue and dequeue bursts through
    the compiled Armada queue."""
    namespace = compile_port(mode).load()
    try_enqueue = namespace["try_enqueue"]
    try_dequeue = namespace["try_dequeue"]
    burst = QUEUE_SIZE - 1
    completed = 0
    value = 0
    started = time.perf_counter()
    while completed < operations:
        n = min(burst, operations - completed)
        for _ in range(n):
            try_enqueue(value)
            value += 1
        for _ in range(n):
            try_dequeue()
        completed += 2 * n
    elapsed = time.perf_counter() - started
    return ThroughputResult(completed, elapsed)
