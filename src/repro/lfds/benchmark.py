"""The liblfds-style built-in queue benchmark (§6.4 / Figure 12).

"We run (1,000 times) its built-in benchmark for evaluating queue
performance, using queue size 512."  The built-in benchmark drives
enqueue/dequeue operation pairs through the ring as fast as possible
and reports throughput in operations per second.

Two harnesses are provided:

* :func:`single_thread_throughput` — the paced mode liblfds uses for
  its cross-variant comparison: one thread alternately fills and drains
  the ring, so every cycle exercises both index paths and the element
  array.  Deterministic, low variance; this is what the Figure 12
  reproduction uses.
* :func:`two_thread_throughput` — a real producer/consumer pair on
  ``threading`` threads, for the concurrency smoke benchmark.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable


@dataclass
class ThroughputResult:
    operations: int
    seconds: float

    @property
    def ops_per_second(self) -> float:
        return self.operations / self.seconds if self.seconds > 0 else 0.0


def single_thread_throughput(
    queue_factory: Callable[[int], object],
    queue_size: int = 512,
    operations: int = 100_000,
) -> ThroughputResult:
    """Alternate bursts of enqueues and dequeues through the ring."""
    queue = queue_factory(queue_size)
    burst = queue.capacity  # type: ignore[attr-defined]
    completed = 0
    started = time.perf_counter()
    value = 0
    while completed < operations:
        n = min(burst, operations - completed)
        for _ in range(n):
            queue.try_enqueue(value)  # type: ignore[attr-defined]
            value += 1
        for _ in range(n):
            queue.try_dequeue()  # type: ignore[attr-defined]
        completed += 2 * n
    elapsed = time.perf_counter() - started
    return ThroughputResult(completed, elapsed)


def two_thread_throughput(
    queue_factory: Callable[[int], object],
    queue_size: int = 512,
    items: int = 50_000,
) -> ThroughputResult:
    """A real SPSC producer/consumer pair."""
    queue = queue_factory(queue_size)
    received: list[int] = []

    def producer() -> None:
        sent = 0
        while sent < items:
            if queue.try_enqueue(sent):  # type: ignore[attr-defined]
                sent += 1

    def consumer() -> None:
        got = 0
        while got < items:
            ok, _value = queue.try_dequeue()  # type: ignore[attr-defined]
            if ok:
                got += 1
        received.append(got)

    started = time.perf_counter()
    threads = [
        threading.Thread(target=producer),
        threading.Thread(target=consumer),
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - started
    assert received == [items]
    return ThroughputResult(2 * items, elapsed)
