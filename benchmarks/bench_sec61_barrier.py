"""§6.1 Barrier: per-level effort profile vs. the paper.

Paper: "The implementation is 57 SLOC.  The first proof level uses 10
additional SLOC for new variables and assignments, and 5 SLOC for the
recipe; Armada generates 3,649 SLOC of proof.  The next level uses 35
additional SLOC ...; 102 further SLOC for the recipe, mostly for
invariants and rely-guarantee predicates.  Armada generates 46,404
SLOC of proof."

The benchmark reproduces the per-level breakdown (added program SLOC,
recipe SLOC, generated SLOC) and checks the qualitative claims: level 1
is a cheap variable introduction; level 2 carries the rely-guarantee
weight (larger recipe, much larger generated proof).
"""

from __future__ import annotations

from _common import fmt_table, record
from repro.casestudies import barrier, run_case_study
from repro.casestudies.common import sloc


def test_sec61_barrier_breakdown(benchmark):
    study = barrier.get()

    def verify():
        report = run_case_study(study)
        assert report.verified
        return report

    report = benchmark.pedantic(verify, rounds=1, iterations=1)

    level_sizes = study.level_sloc()
    impl = level_sizes["BarrierImpl"]
    added1 = level_sizes["BarrierGhost"] - impl
    added2 = level_sizes["BarrierAssume"] - level_sizes["BarrierGhost"]
    rows = report.rows()
    paper = study.paper_numbers

    table = fmt_table(
        ["level", "added program SLOC (ours/paper)",
         "recipe SLOC (ours/paper)", "generated SLOC (ours/paper)",
         "strategy"],
        [
            [
                "1 (ghost variables)",
                f"{added1} / {paper['level1_added_sloc']}",
                f"{rows[0]['recipe_sloc']} / {paper['level1_recipe_sloc']}",
                f"{rows[0]['generated_sloc']} / "
                f"{paper['level1_generated_sloc']}",
                rows[0]["strategy"],
            ],
            [
                "2 (rely-guarantee)",
                f"{added2} / {paper['level2_added_sloc']}",
                f"{rows[1]['recipe_sloc']} / {paper['level2_recipe_sloc']}",
                f"{rows[1]['generated_sloc']} / "
                f"{paper['level2_generated_sloc']}",
                rows[1]["strategy"],
            ],
        ],
    )
    lines = [
        f"Implementation: {impl} SLOC (paper: "
        f"{paper['implementation_sloc']}; ours is a 2-thread instance of "
        "the same barrier).",
        "",
        *table,
        "",
        "Shape checks (the paper's qualitative claims):",
    ]
    checks = {
        "level 1 recipe is tiny (<= 6 SLOC)": rows[0]["recipe_sloc"] <= 6,
        "level 2 recipe is the larger one":
            rows[1]["recipe_sloc"] > rows[0]["recipe_sloc"],
        "level 2 generates the larger proof":
            rows[1]["generated_sloc"] > rows[0]["generated_sloc"],
        "generated >> recipe at both levels": all(
            r["generated_sloc"] > 10 * max(1, r["recipe_sloc"])
            for r in rows
        ),
        "both levels verified": report.verified,
    }
    for claim, ok in checks.items():
        lines.append(f"- {'PASS' if ok else 'FAIL'}: {claim}")
        assert ok, claim
    record("sec61_barrier", "Sec. 6.1 — Barrier", lines)
