"""Shared helpers for the benchmark harness.

Each benchmark regenerates one table or figure of the paper's
evaluation (§6) and records a human-readable report under
``benchmarks/results/`` so EXPERIMENTS.md can cite the measured rows.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def record(name: str, title: str, lines: list[str],
           data: dict | None = None) -> None:
    """Write a markdown report (and optional JSON) for one experiment."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.md"
    body = [f"# {title}", ""]
    body.extend(lines)
    body.append("")
    path.write_text("\n".join(body))
    if data is not None:
        (RESULTS_DIR / f"{name}.json").write_text(
            json.dumps(data, indent=2, default=str)
        )


def fmt_table(headers: list[str], rows: list[list]) -> list[str]:
    """Render a markdown table."""
    lines = ["| " + " | ".join(headers) + " |"]
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return lines


def interleaved_best(workloads: dict[str, callable], rounds: int = 5
                     ) -> dict[str, float]:
    """Run each workload round-robin, returning the best (max) value per
    workload.  Interleaving plus best-of counters CPU-frequency noise,
    which dominates this environment."""
    best: dict[str, float] = {name: 0.0 for name in workloads}
    for name, fn in workloads.items():  # warmup
        fn()
    for _ in range(rounds):
        for name, fn in workloads.items():
            value = fn()
            if value > best[name]:
                best[name] = value
    return best
