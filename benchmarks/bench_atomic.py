"""Regular-to-atomic reduction: state-space and obligation payoff.

Two experiments land in ``benchmarks/results/atomic.{md,json}``:

1. **Exploration sweep** — the queue and mcslock levels are explored
   under sc and tso four ways: full fan-out, the regular-to-atomic
   lift (``--atomic``), dynamic POR, and atomic composed with dynamic
   POR.  Every mode must be observationally identical to the full
   sweep (same outcomes, UB reasons, budget status) while the atomic
   rows record how many states the lift hides and how many micro-steps
   its chains absorb.  Acceptance floors: the lift alone hides
   **≥25%** of states on the implementation levels (measured: ~40-45%)
   and **≥10%** on every abstract level (nondet choice points break
   chains early, so the upper levels save less: ~13-22%).  A
   release/acquire row asserts the clean self-disable: identical state
   count to the unreduced sweep and a ``reductions_disabled`` reason.

2. **Obligation collapse** — the queue and mcslock proof chains verify
   twice, baseline and ``--atomic``.  The farm must schedule
   **strictly fewer** obligations under the collapse (consecutive
   statement lemmas along non-breaking runs merge into atomic blocks)
   with bit-identical per-proof verdicts and an unchanged end-to-end
   refinement result.

Set ``BENCH_ATOMIC_SMOKE=1`` to restrict both experiments to the
queue study (CI's bench-smoke step).
"""

from __future__ import annotations

import os
import time

from _common import fmt_table, record
from repro.explore import Explorer
from repro.casestudies import load
from repro.farm import FarmConfig, VerificationFarm
from repro.lang.frontend import check_program
from repro.machine.translator import translate_level
from repro.proofs.engine import ProofEngine

SMOKE = os.environ.get("BENCH_ATOMIC_SMOKE") == "1"

STUDIES = ("queue",) if SMOKE else ("queue", "mcslock")
MODELS = ("sc", "tso")
BUDGET = 400_000

#: Minimum fraction of states the lift must hide: implementation
#: levels chain long straightline runs of local micro-steps; the
#: abstract levels replace them with nondet choices that break chains.
IMPL_SAVINGS_FLOOR = 0.25
ABSTRACT_SAVINGS_FLOOR = 0.10


def _machines(study_name: str, model: str):
    study = load(study_name)
    checked = check_program(study.source, f"<{study_name}>")
    for level in checked.program.levels:
        yield (
            f"{study_name}/{level.name}",
            translate_level(checked.contexts[level.name],
                            memory_model=model),
        )


def _verdict(result):
    return (
        frozenset(result.final_outcomes),
        frozenset(result.ub_reasons),
        bool(result.assert_failures),
        result.hit_state_budget,
    )


def _explore(machine, **kwargs):
    started = time.perf_counter()
    result = Explorer(machine, BUDGET, **kwargs).explore()
    return result, time.perf_counter() - started


def test_atomic_exploration_payoff():
    rows = []
    data: dict = {"smoke": SMOKE, "explore": {}, "ra": {}}

    for study in STUDIES:
        for model in MODELS:
            for name, machine in _machines(study, model):
                full, full_s = _explore(machine)
                atomic, atomic_s = _explore(machine, atomic=True)
                both, both_s = _explore(machine, atomic=True, dpor=True)
                assert _verdict(atomic) == _verdict(full), (name, model)
                assert _verdict(both) == _verdict(full), (name, model)
                saved = 1 - atomic.states_visited / full.states_visited
                floor = (
                    IMPL_SAVINGS_FLOOR if "Impl" in name
                    else ABSTRACT_SAVINGS_FLOOR
                )
                assert saved >= floor, (
                    f"{name}/{model}: atomic saved only {saved:.0%}"
                )
                stats = atomic.atomic_stats
                rows.append([
                    name, model,
                    full.states_visited,
                    atomic.states_visited,
                    f"{saved:.0%}",
                    both.states_visited,
                    stats.chains,
                    stats.micro_absorbed,
                    f"{full_s:.3f}s",
                    f"{atomic_s:.3f}s",
                ])
                data["explore"][f"{name}/{model}"] = {
                    "full_states": full.states_visited,
                    "atomic_states": atomic.states_visited,
                    "atomic_dpor_states": both.states_visited,
                    "saved": round(saved, 4),
                    "chains": stats.chains,
                    "micro_absorbed": stats.micro_absorbed,
                    "full_seconds": round(full_s, 4),
                    "atomic_seconds": round(atomic_s, 4),
                    "atomic_dpor_seconds": round(both_s, 4),
                }

    # Release/acquire: the lift must self-disable and change nothing.
    for name, machine in _machines(STUDIES[0], "ra"):
        baseline, _ = _explore(machine)
        explorer = Explorer(machine, BUDGET, atomic=True)
        assert explorer.reductions_disabled is not None
        assert "ra" in explorer.reductions_disabled
        lifted = explorer.explore()
        assert lifted.states_visited == baseline.states_visited
        assert _verdict(lifted) == _verdict(baseline)
        assert lifted.atomic_stats is None
        data["ra"][name] = {
            "states": baseline.states_visited,
            "reductions_disabled": explorer.reductions_disabled,
        }
        rows.append([
            name, "ra", baseline.states_visited,
            baseline.states_visited, "0% (self-disabled)",
            "-", "-", "-", "-", "-",
        ])
        break  # one RA row demonstrates the fallback

    lines = ["## Exploration: states hidden by the atomic lift", ""]
    lines += fmt_table(
        ["level", "model", "full", "atomic", "saved", "atomic+dpor",
         "chains", "micro absorbed", "full time", "atomic time"],
        rows,
    )
    _ATOMIC_REPORT["explore_lines"] = lines
    _ATOMIC_REPORT["data"] = data
    _flush_if_complete()


def _verify(study_name: str, atomic: bool):
    study = load(study_name)
    checked = check_program(study.source, f"<{study_name}>")
    farm = VerificationFarm(FarmConfig(jobs=1, cache_dir=None))
    try:
        engine = ProofEngine(
            checked, max_states=BUDGET, farm=farm, atomic=atomic,
        )
        started = time.perf_counter()
        outcome = engine.run_all()
        elapsed = time.perf_counter() - started
        summary = farm.summary()
    finally:
        farm.close()
    return outcome, summary, elapsed


def test_atomic_obligation_collapse():
    rows = []
    data: dict = {"smoke": SMOKE, "verify": {}}

    for study in STUDIES:
        base, base_farm, base_s = _verify(study, atomic=False)
        lifted, lifted_farm, lifted_s = _verify(study, atomic=True)
        # Bit-identical verdicts, strictly fewer farm obligations.
        assert lifted.success == base.success, study
        assert lifted.end_to_end == base.end_to_end, study
        assert [
            (o.proof_name, o.strategy, o.success)
            for o in lifted.outcomes
        ] == [
            (o.proof_name, o.strategy, o.success)
            for o in base.outcomes
        ], study
        assert lifted_farm.jobs < base_farm.jobs, (
            f"{study}: --atomic must schedule strictly fewer farm "
            f"obligations ({lifted_farm.jobs} vs {base_farm.jobs})"
        )
        saved = 1 - lifted_farm.jobs / base_farm.jobs
        rows.append([
            study, len(base.outcomes),
            base_farm.jobs, lifted_farm.jobs, f"{saved:.0%}",
            base.success and base.end_to_end,
            f"{base_s:.2f}s", f"{lifted_s:.2f}s",
        ])
        data["verify"][study] = {
            "proofs": len(base.outcomes),
            "baseline_obligations": base_farm.jobs,
            "atomic_obligations": lifted_farm.jobs,
            "saved": round(saved, 4),
            "verified": bool(base.success and base.end_to_end),
            "baseline_seconds": round(base_s, 4),
            "atomic_seconds": round(lifted_s, 4),
        }

    lines = ["## Verification: farm obligations under --atomic", ""]
    lines += fmt_table(
        ["chain", "proofs", "baseline obligations",
         "atomic obligations", "saved", "verified",
         "baseline time", "atomic time"],
        rows,
    )
    _ATOMIC_REPORT["verify_lines"] = lines
    _ATOMIC_REPORT.setdefault("data", {})["verify"] = data["verify"]
    _flush_if_complete()


#: The two experiments run as separate pytest items but publish one
#: report; whichever finishes second writes the file.
_ATOMIC_REPORT: dict = {}


def _flush_if_complete() -> None:
    if "explore_lines" not in _ATOMIC_REPORT:
        return
    if "verify_lines" not in _ATOMIC_REPORT:
        return
    lines = (
        _ATOMIC_REPORT["explore_lines"] + [""]
        + _ATOMIC_REPORT["verify_lines"]
    )
    record(
        "atomic",
        "Regular-to-atomic: explored states and farm obligations",
        lines,
        _ATOMIC_REPORT.get("data"),
    )
