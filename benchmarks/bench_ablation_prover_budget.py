"""Ablation: the bounded prover's sampling budget.

This reproduction replaces Dafny/Z3 with small-model enumeration plus
sampling (DESIGN.md).  The knob is the budget: exhaustive low-bit
coverage and random full-width samples.  The sweep characterizes the
tradeoff on the paper's own lemma-customization example (§4.1.2):

* validity: ``(x & 1) == (x % 2)`` must be *proved* at every budget;
* refutation: ``(x & 3) == (x % 2)`` must be *refuted* at every budget
  (counterexample search is what keeps bounded verification honest);
* cost grows with the budget.
"""

from __future__ import annotations

import time

from _common import fmt_table, record
from repro.lang import types as ty
from repro.lang.frontend import check_program
from repro.verifier.prover import Prover, ProverConfig

BUDGETS = [
    ("tiny", ProverConfig(exhaustive_bits=2, random_samples=4)),
    ("default", ProverConfig(exhaustive_bits=4, random_samples=32)),
    ("wide", ProverConfig(exhaustive_bits=6, random_samples=128)),
]


def _goal(text: str):
    program = check_program(
        "level L { var x: uint32; void main() { assert " + text + "; } }"
    )
    return program.program.levels[0].methods[0].body.stmts[0].cond


def test_ablation_prover_budget(benchmark):
    valid = _goal("(x & 1) == (x % 2)")
    invalid = _goal("(x & 3) == (x % 2)")
    variables = {"x": ty.UINT32}

    def default_run():
        prover = Prover(BUDGETS[1][1])
        assert prover.prove_valid(valid, variables).ok
        assert not prover.prove_valid(invalid, variables).ok

    benchmark(default_run)

    rows = []
    for name, config in BUDGETS:
        prover = Prover(config)
        t0 = time.perf_counter()
        v1 = prover.prove_valid(valid, variables)
        v2 = prover.prove_valid(invalid, variables)
        elapsed = time.perf_counter() - t0
        rows.append(
            [
                name,
                f"bits={config.exhaustive_bits}, "
                f"samples={config.random_samples}",
                v1.status,
                v2.status,
                v1.assignments_checked + v2.assignments_checked,
                f"{elapsed * 1e3:.2f} ms",
            ]
        )
        assert v1.ok, name
        assert not v2.ok, name
    lines = fmt_table(
        ["budget", "config", "valid goal", "invalid goal",
         "assignments", "time"],
        rows,
    )
    lines += [
        "",
        "Refutations are sound at every budget (a counterexample is a "
        "real counterexample); 'proved' verdicts are bounded — the "
        "documented substitution for Z3's unbounded reasoning.",
    ]
    record(
        "ablation_prover_budget",
        "Ablation — bounded prover budget (Dafny/Z3 substitute)",
        lines,
    )
