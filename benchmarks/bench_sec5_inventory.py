"""§5 Implementation: system inventory and size.

Paper: "our state-machine translator is 13,191 new source lines of code
of C#. ... Our proof framework is 3,322 SLOC of C#.  We also extend
Dafny with a 1,767-SLOC backend ... Our general-purpose proof library
is 5,618 SLOC of Dafny."

The benchmark inventories this reproduction's corresponding components
and measures translator throughput (levels translated per second) as
the implementation-scale data point.
"""

from __future__ import annotations

from pathlib import Path

from _common import fmt_table, record
from repro.casestudies import queue
from repro.lang.frontend import check_level
from repro.machine.translator import translate_level

SRC = Path(__file__).parent.parent / "src" / "repro"

#: Our component -> (paths, the paper's counterpart and size).
COMPONENTS = {
    "front end + state-machine translator": (
        ["lang", "machine"],
        "state-machine translator: 13,191 SLOC of C#",
    ),
    "proof framework (engine + strategies)": (
        ["proofs", "strategies"],
        "proof framework: 3,322 SLOC of C#",
    ),
    "compiler back ends": (
        ["compiler"],
        "ClightTSO backend: 1,767 SLOC",
    ),
    "verifier + explorer (Dafny/Z3 substitute)": (
        ["verifier", "explore"],
        "(the paper uses Dafny/Boogie/Z3 as external tools)",
    ),
    "runtime + liblfds substrate + case studies": (
        ["runtime", "lfds", "casestudies"],
        "general-purpose proof library: 5,618 SLOC of Dafny",
    ),
}


def _component_sloc(subdirs: list[str]) -> int:
    total = 0
    for sub in subdirs:
        for path in (SRC / sub).rglob("*.py"):
            for line in path.read_text().splitlines():
                stripped = line.strip()
                if stripped and not stripped.startswith("#"):
                    total += 1
    return total


def test_sec5_inventory(benchmark):
    source = queue.LEVELS[0][1]
    ctx = check_level(source)

    def translate():
        return translate_level(ctx)

    machine = benchmark(translate)
    assert machine.step_count() > 10

    rows = []
    total = 0
    for name, (subdirs, paper_note) in COMPONENTS.items():
        count = _component_sloc(subdirs)
        total += count
        rows.append([name, count, paper_note])
    lines = fmt_table(["component", "SLOC (ours)", "paper counterpart"],
                      rows)
    lines += [
        "",
        f"Total library SLOC: {total}.",
        f"Translator output for the queue implementation: "
        f"{len(machine.pcs)} PCs, {machine.step_count()} step types "
        "(program-specific, sec. 3.2.2).",
    ]
    record("sec5_inventory", "Sec. 5 — implementation inventory", lines)
