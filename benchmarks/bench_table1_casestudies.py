"""Table 1: the four example programs used to evaluate Armada.

| Name     | Description                                             |
|----------|---------------------------------------------------------|
| Barrier  | barrier incompatible with ownership-based proofs        |
| Pointers | program using multiple pointers                         |
| MCSLock  | Mellor-Crummey and Scott lock                           |
| Queue    | lock-free queue from the liblfds library                |

The benchmark verifies each study end to end and reports the effort
profile (implementation / recipe / generated SLOC), the headline of
the paper's evaluation: tiny recipes expand into large machine-checked
proofs.
"""

from __future__ import annotations

import pytest

from _common import fmt_table, record
from repro.casestudies import TABLE1, run_case_study

_REPORT_ROWS: dict[str, dict] = {}


@pytest.mark.parametrize("name", sorted(TABLE1))
def test_table1_case_study(benchmark, name):
    study = TABLE1[name]()

    def verify():
        report = run_case_study(study)
        assert report.verified, [r for r in report.rows()
                                 if not r["verified"]]
        return report

    report = benchmark.pedantic(verify, rounds=1, iterations=1)
    _REPORT_ROWS[name] = report.summary()
    _REPORT_ROWS[name]["rows"] = report.rows()

    if len(_REPORT_ROWS) == len(TABLE1):
        _write_report()


def _write_report():
    rows = []
    for name in TABLE1:
        summary = _REPORT_ROWS[name]
        rows.append(
            [
                name,
                "yes" if summary["verified"] else "NO",
                summary["implementation_sloc"],
                summary["levels"],
                summary["recipe_sloc"],
                summary["generated_sloc"],
                (
                    f"{summary['generated_sloc'] / summary['recipe_sloc']:.0f}x"
                    if summary["recipe_sloc"]
                    else "-"
                ),
            ]
        )
    lines = fmt_table(
        ["case study", "verified", "impl SLOC", "levels", "recipe SLOC",
         "generated SLOC", "amplification"],
        rows,
    )
    lines.append("")
    lines.append(
        "Paper's Table 1 lists the same four studies; all four verify "
        "here.  The paper's effort-amplification (e.g. Barrier: 5-SLOC "
        "recipe -> 3,649 generated; 102-SLOC recipe -> 46,404 generated) "
        "is reproduced in shape: recipes are 1-3 orders of magnitude "
        "smaller than the generated proofs."
    )
    record("table1_casestudies", "Table 1 — case studies", lines,
           _REPORT_ROWS)
