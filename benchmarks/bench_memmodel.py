"""Memory-model cost comparison: state counts and wall-clock per model.

The same programs — the litmus corpus plus the mcslock and queue case
studies — are explored under each shipped memory model (SC, x86-TSO,
C11 release/acquire) and the run records how much state space each
model's extra nondeterminism costs: SC is the floor (no environment
transitions at all), TSO adds drain interleavings, RA adds per-location
view advances.  For the lock-protected case studies the run also
asserts the *outcomes* agree across models (the DRF guarantee), so the
benchmark doubles as a differential check.  Results land in
``benchmarks/results/memmodel.{md,json}``.

Set ``BENCH_MEMMODEL_SMOKE=1`` to restrict the sweep to the litmus
corpus (CI's bench-smoke step).
"""

from __future__ import annotations

import os
import time

from _common import fmt_table, record
from repro.casestudies import load
from repro.explore import Explorer
from repro.lang.frontend import check_level, check_program
from repro.machine.translator import translate_level
from repro.memmodel import MODELS
from repro.memmodel.litmus import CORPUS

MODELS_ORDER = ("sc", "tso", "ra")

#: Case studies with their explorer budgets.  POR stays off so the
#: state counts are comparable across models (RA always runs full).
STUDIES = {
    "mcslock": 600_000,
    "queue": 600_000,
}

SMOKE = os.environ.get("BENCH_MEMMODEL_SMOKE") == "1"


def _explore(source: str, model: str, budget: int):
    machine = translate_level(
        check_level(source), memory_model=model
    )
    started = time.perf_counter()
    result = Explorer(machine, max_states=budget, por=False).explore()
    elapsed = time.perf_counter() - started
    outcomes = {
        tuple(log) for kind, log in result.final_outcomes
        if kind == "normal"
    }
    return result, outcomes, elapsed


def main() -> None:
    assert sorted(MODELS) == sorted(MODELS_ORDER)
    rows: list[list] = []
    data: dict = {"litmus": {}, "casestudies": {}}

    for test in CORPUS:
        source = "level L { " + test.source + " }"
        per_model = {}
        for model in MODELS_ORDER:
            result, outcomes, elapsed = _explore(
                source, model, test.max_states
            )
            assert not result.hit_state_budget, (test.name, model)
            weak = test.weak_outcome in outcomes
            assert weak == test.allowed[model], (test.name, model)
            per_model[model] = {
                "states": result.states_visited,
                "seconds": round(elapsed, 4),
                "weak_observed": weak,
            }
        data["litmus"][test.name] = per_model
        rows.append(
            [test.name]
            + [per_model[m]["states"] for m in MODELS_ORDER]
            + [
                "/".join(
                    ("weak" if per_model[m]["weak_observed"] else "-")
                    for m in MODELS_ORDER
                )
            ]
        )

    study_rows: list[list] = []
    if not SMOKE:
        for name, budget in STUDIES.items():
            study = load(name)
            checked = check_program(study.source, f"<{name}>")
            level = checked.program.levels[0].name
            per_model = {}
            baseline = None
            for model in MODELS_ORDER:
                machine = translate_level(
                    checked.contexts[level], memory_model=model
                )
                started = time.perf_counter()
                result = Explorer(
                    machine, max_states=budget, por=False
                ).explore()
                elapsed = time.perf_counter() - started
                assert not result.hit_state_budget, (name, model)
                outcomes = sorted(
                    (kind, tuple(log))
                    for kind, log in result.final_outcomes
                )
                if baseline is None:
                    baseline = outcomes
                else:
                    # DRF: the lock-protected studies must agree.
                    assert outcomes == baseline, (name, model)
                per_model[model] = {
                    "states": result.states_visited,
                    "seconds": round(elapsed, 4),
                }
            data["casestudies"][name] = per_model
            study_rows.append(
                [name]
                + [per_model[m]["states"] for m in MODELS_ORDER]
                + [per_model[m]["seconds"] for m in MODELS_ORDER]
            )

    lines = [
        "Explorer state counts per memory model (POR off; identical",
        "budgets per program).  SC is the floor, TSO adds store-buffer",
        "drain interleavings, RA adds per-location view advances.",
        "",
        "## Litmus corpus",
        "",
    ]
    lines += fmt_table(
        ["test", "sc states", "tso states", "ra states",
         "weak (sc/tso/ra)"],
        rows,
    )
    if study_rows:
        lines += [
            "",
            "## Case studies (implementation levels; outcomes asserted",
            "identical across models — the DRF guarantee)",
            "",
        ]
        lines += fmt_table(
            ["study", "sc states", "tso states", "ra states",
             "sc s", "tso s", "ra s"],
            study_rows,
        )
    record("memmodel", "Memory-model state-space cost", lines, data)
    print("\n".join(lines))


if __name__ == "__main__":
    main()
