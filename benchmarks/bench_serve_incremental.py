"""Incremental re-verification through ``armada serve``.

The daemon's pitch (ISSUE: verification-as-a-service) is that a
resubmission pays only for what changed: per-level machine fingerprints
pick out the invalidated proofs, the shared outcome cache replays the
rest wholesale.  This benchmark measures that on an 8-level lock-based
counter chain (7 refinement proofs, each with a whole-program product
check — the expensive kind the lemma cache alone cannot skip):

* **cold** — first submission, empty caches: every proof verified;
* **warm** — byte-identical resubmit: zero proofs re-verified;
* **edited** — the top level's ``done`` write becomes nondet: exactly
  one proof (the one touching the edited level) re-verified.

The acceptance bar is edited ≥ 5× faster than cold; with 7 proofs of
which 1 re-runs, the expected ratio is ~7×.

Results land in ``benchmarks/results/serve_incremental.{md,json}``.
"""

from __future__ import annotations

import time

from _common import fmt_table, record
from repro.serve.client import ServeClient
from repro.serve.daemon import ArmadaDaemon, DaemonThread

PAIRS = 7
MIN_SPEEDUP = 5.0

LEVEL = """
level L%d {
  var counter: uint32;
  var mutex: uint64;
  var done: uint32;
  void worker() {
    var i: uint32;
    i := 0;
    while (i < 1) {
      lock(&mutex);
      counter := counter + 1;
      unlock(&mutex);
      i := i + 1;
    }
  }
  void main() {
    var t1: uint64;
    var t2: uint64;
    t1 := create_thread worker();
    t2 := create_thread worker();
    join(t1);
    join(t2);
    done := 1;
    print_uint32(counter);
  }
}
"""


def build_chain(edit_top: bool = False) -> str:
    levels = [LEVEL % i for i in range(PAIRS + 1)]
    if edit_top:
        # The one-level edit: the top level's done flag becomes
        # nondet, which is still a valid weakening of done := 1.
        levels[PAIRS] = levels[PAIRS].replace("done := 1;", "done := *;")
    proofs = [
        "proof P%d { refinement L%d L%d %s }" % (
            i, i, i + 1,
            "nondet_weakening" if i == PAIRS - 1 else "weakening",
        )
        for i in range(PAIRS)
    ]
    return "\n".join(levels + proofs)


def _submit_timed(client: ServeClient, source: str) -> tuple[float, dict]:
    started = time.perf_counter()
    job_id = client.submit(
        source, name="bench-chain", options={"validate": "always"}
    )
    response = client.result(job_id, wait=True, timeout=600)
    elapsed = time.perf_counter() - started
    assert response["state"] == "done", response
    assert response["result"]["status"] == "verified", response
    return elapsed, response["result"]


def test_serve_incremental(tmp_path):
    daemon = ArmadaDaemon(state_dir=tmp_path / "state", slots=1)
    scenarios = {}
    with DaemonThread(daemon):
        client = ServeClient(socket_path=daemon.socket_path)
        client.wait_until_ready()
        for label, source in [
            ("cold", build_chain()),
            ("warm", build_chain()),
            ("edited", build_chain(edit_top=True)),
        ]:
            elapsed, result = _submit_timed(client, source)
            inc = result["incremental"]
            scenarios[label] = {
                "seconds": round(elapsed, 3),
                "reused_proofs": inc["reused_proofs"],
                "reverified_proofs": inc["reverified_proofs"],
                "changed_levels": inc["changed_levels"],
                "invalidated_proofs": inc["invalidated_proofs"],
            }

    # The fingerprint diff isolates exactly the edited level's proof.
    assert scenarios["cold"]["reverified_proofs"] == PAIRS
    assert scenarios["warm"]["reverified_proofs"] == 0
    assert scenarios["warm"]["reused_proofs"] == PAIRS
    assert scenarios["edited"]["changed_levels"] == [f"L{PAIRS}"]
    assert scenarios["edited"]["invalidated_proofs"] == [f"P{PAIRS - 1}"]
    assert scenarios["edited"]["reverified_proofs"] == 1
    assert scenarios["edited"]["reused_proofs"] == PAIRS - 1

    cold = scenarios["cold"]["seconds"]
    warm = scenarios["warm"]["seconds"]
    edited = scenarios["edited"]["seconds"]
    edited_speedup = cold / edited
    warm_speedup = cold / warm
    assert edited_speedup >= MIN_SPEEDUP, (
        f"one-level edit resubmit only {edited_speedup:.1f}x faster "
        f"than cold (need >= {MIN_SPEEDUP}x): cold={cold}s "
        f"edited={edited}s"
    )
    assert warm > 0 and warm < edited

    rows = [
        [label,
         f"{s['seconds']:.2f}",
         s["reverified_proofs"],
         s["reused_proofs"],
         f"{cold / s['seconds']:.1f}x"]
        for label, s in scenarios.items()
    ]
    record(
        "serve_incremental",
        "armada serve: cold vs warm vs one-level-edited resubmit "
        f"({PAIRS + 1}-level chain, {PAIRS} proofs, validate=always)",
        fmt_table(
            ["scenario", "wall (s)", "proofs re-verified",
             "proofs reused", "speedup vs cold"],
            rows,
        ) + [
            "",
            f"One-level edit re-verifies only P{PAIRS - 1} "
            f"({edited_speedup:.1f}x faster than cold; acceptance "
            f"bar {MIN_SPEEDUP:.0f}x).",
        ],
        data={
            "pairs": PAIRS,
            "scenarios": scenarios,
            "edited_speedup_vs_cold": round(edited_speedup, 2),
            "warm_speedup_vs_cold": round(warm_speedup, 2),
        },
    )
