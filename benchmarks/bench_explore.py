"""Exploration core: compiled step specialization and POR, measured.

Three experiments land in ``benchmarks/results/explore.{md,json}``,
``benchmarks/results/explore_relation.{md,json}`` and
``benchmarks/results/explore_sharded.{md,json}``:

1. **Reduction sweep** — for every case-study level and a set of TSO
   litmus shapes, the state space is explored six ways: interpreted
   full fan-out, compiled (``repro.compiler.stepc``) full fan-out,
   compiled + static ample-set reduction (``repro.explore.por``),
   compiled + dynamic POR with sleep sets (``repro.explore.dpor``),
   dynamic POR + thread-symmetry (``repro.explore.symmetry``), and
   hash-sharded two-worker partitioning (``repro.explore.sharded``).
   The run asserts all six are *observationally identical* (same final
   outcomes, same UB reasons, same budget status) while recording the
   states/transitions each reduction saved and the wall-clock of each
   mode.  Static POR must never cost more than 1.5x the full sweep on
   any row (the small-graph regression guard): static independence
   facts are cached per machine and single-runnable-thread states
   short-circuit, so tiny graphs no longer pay a fact-computation tax.
   The dynamic reducer is exempt from that guard — it trades
   per-transition footprint work for much deeper pruning, and the
   acceptance floor below is about *states*, not time: on at least two
   mcslock/queue rows where the static rule saves ≤20% of states, the
   dynamic rule must save ≥30%.  Sharding is a partition, not a
   reduction: its row must visit exactly the full state count.

2. **Step-relation enumeration** — the paper's Figure-12 regime: how
   fast can the successor relation itself be enumerated over the
   reachable set of the largest level (QueueNondet under TSO)?  The
   compiled ``enabled_and_next`` is compared against
   ``enabled_transitions`` + ``next_state`` pair-for-pair
   (bit-identical transitions and successor states) and must be at
   least 10x faster (5x in smoke mode, which also shrinks the state
   cap).

3. **Sharded scaling** — QueueNondet/tso explored single-process and
   hash-sharded across 2 and 4 forked workers, recording wall-clocks
   alongside the host's core count.  Verdicts, state counts and
   transition counts must be identical at every width, and any
   counterexample trace must replay.  The sharded-beats-single
   wall-clock assertion is gated on ``os.cpu_count() >= 4``: worker
   processes can only overlap on a multi-core host, and this
   environment's honest single-core numbers (sharding costs IPC and
   wins nothing locally) are recorded rather than faked.

Set ``BENCH_EXPLORE_SMOKE=1`` to restrict the sweep to the smallest
case study and lower the speedup bar (CI's bench-smoke step).
"""

from __future__ import annotations

import gc
import os
import time

from _common import fmt_table, record
from repro.casestudies import ALL, load
from repro.compiler.stepc import stepper_for
from repro.explore import Explorer
from repro.lang.frontend import check_level, check_program
from repro.machine.translator import translate_level

#: Explorer budget per study (mcslock/queue need the larger bound).
STUDY_BUDGETS = {
    "tsp": 200_000,
    "barrier": 200_000,
    "pointers": 200_000,
    "mcslock": 400_000,
    "queue": 400_000,
}

LITMUS_BUDGET = 200_000

SMOKE = os.environ.get("BENCH_EXPLORE_SMOKE") == "1"

#: POR may never cost more than this multiple of the full sweep on any
#: row, plus a small absolute allowance so micro-rows (a few ms) do not
#: fail on scheduler noise.
POR_OVERHEAD_LIMIT = 1.5
POR_OVERHEAD_SLACK_S = 0.005

#: Required step-relation speedup on QueueNondet/tso.
RELATION_SPEEDUP_FLOOR = 5.0 if SMOKE else 10.0
RELATION_CAP = 8_000 if SMOKE else 40_000


def _print_regs(*names: str) -> str:
    parts = []
    for i, name in enumerate(names):
        parts.append(f"var s{i}: uint32 := 0; s{i} := {name}; "
                     f"print_uint32(s{i});")
    return " ".join(parts)


#: The classic x86-TSO shapes (see tests/test_tso_litmus.py).  IRIW is
#: omitted: its 4M-state space makes the unreduced baseline too slow
#: for a benchmark that runs both sides.
LITMUS = {
    "SB": (
        "var x: uint32; var y: uint32; var r1: uint32; var r2: uint32; "
        "void t1() { x := 1; r1 := y; fence(); } "
        "void main() { var a: uint64 := 0; a := create_thread t1(); "
        "y := 1; r2 := x; join a; fence(); "
        + _print_regs("r1", "r2") + " }"
    ),
    "MP": (
        "var data: uint32; var flag: uint32; "
        "var rf: uint32; var rd: uint32; "
        "void writer() { data := 42; flag := 1; } "
        "void main() { var a: uint64 := 0; "
        "a := create_thread writer(); "
        "rf := flag; rd := data; join a; fence(); "
        + _print_regs("rf", "rd") + " }"
    ),
    "LB": (
        "var x: uint32; var y: uint32; "
        "var r1: uint32; var r2: uint32; "
        "void t1() { r1 := x; y := 1; } "
        "void main() { var a: uint64 := 0; a := create_thread t1(); "
        "r2 := y; x := 1; join a; fence(); "
        + _print_regs("r1", "r2") + " }"
    ),
    "CoRR": (
        "var x: uint32; var r1: uint32; var r2: uint32; "
        "void writer() { x := 1; } "
        "void main() { var a: uint64 := 0; "
        "a := create_thread writer(); "
        "r1 := x; r2 := x; join a; fence(); "
        + _print_regs("r1", "r2") + " }"
    ),
}


def _workloads():
    """Yield (name, machine, budget) for every benchmarked program."""
    studies = ["tsp"] if SMOKE else sorted(ALL)
    for name in studies:
        study = load(name)
        checked = check_program(study.source, f"<{name}>")
        for level in checked.program.levels:
            yield (
                f"{name}/{level.name}",
                translate_level(checked.contexts[level.name]),
                STUDY_BUDGETS[name],
            )
    if SMOKE:
        return
    for name, source in LITMUS.items():
        machine = translate_level(
            check_level("level L { " + source + " }")
        )
        yield f"litmus/{name}", machine, LITMUS_BUDGET


def _explore(machine, budget: int, *, compiled: bool = True,
             repeats: int = 2, **kwargs):
    """Best-of-*repeats* exploration (min wall time counters noise; the
    first run also warms the stepper / reducer static facts, so no row
    pays one-time costs).  ``kwargs`` select the reduction (``por``,
    ``dpor``, ``symmetry``)."""
    best = None
    elapsed = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        result = Explorer(
            machine, budget, compiled=compiled, **kwargs
        ).explore()
        elapsed = min(elapsed, time.perf_counter() - started)
        best = result
    return best, elapsed


def _explore_sharded(machine, budget: int, workers: int,
                     repeats: int = 1):
    from repro.explore import ShardedExplorer

    best = None
    elapsed = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        result = ShardedExplorer(
            machine, workers=workers, max_states=budget
        ).explore()
        elapsed = min(elapsed, time.perf_counter() - started)
        best = result
    return best, elapsed


def test_reduction_sweep_equivalence_and_payoff():
    rows = []
    data: dict = {"smoke": SMOKE, "programs": {}}
    strict_reductions = 0
    #: mcslock/queue rows where the static rule is nearly blind
    #: (≤20% saved) but the dynamic rule prunes ≥30%.
    dynamic_payoff_rows = 0

    for name, machine, budget in _workloads():
        interp, interp_s = _explore(
            machine, budget, compiled=False, repeats=1,
        )
        off, off_s = _explore(machine, budget)
        on, on_s = _explore(machine, budget, por=True)
        dyn, dyn_s = _explore(machine, budget, dpor=True)
        sym, sym_s = _explore(machine, budget, dpor=True, symmetry=True)
        shard, shard_s = _explore_sharded(machine, budget, workers=2)

        # The compiled stepper must be observationally invisible, and
        # every reduction may only shrink the number of intermediate
        # states, never change what the program can do.
        assert not interp.hit_state_budget, name
        for other in (off, on, dyn, sym, shard):
            assert other.hit_state_budget == interp.hit_state_budget, name
            assert other.final_outcomes == interp.final_outcomes, name
            assert set(other.ub_reasons) == set(interp.ub_reasons), name
            assert bool(other.assert_failures) == \
                bool(interp.assert_failures), name
        assert off.states_visited == interp.states_visited, name
        assert off.transitions_taken == interp.transitions_taken, name
        assert on.states_visited <= off.states_visited, name
        assert dyn.states_visited <= off.states_visited, name
        assert sym.states_visited <= off.states_visited, name
        # Sharding partitions; it visits exactly the full space.
        assert shard.states_visited == off.states_visited, name
        assert shard.transitions_taken == off.transitions_taken, name

        # POR small-graph guard: never pay more than 1.5x the full
        # sweep (plus a few ms of absolute noise allowance).  Applies
        # to the *static* rule only — the dynamic reducer deliberately
        # spends per-transition footprint work to prune deeper.
        assert on_s <= POR_OVERHEAD_LIMIT * off_s + POR_OVERHEAD_SLACK_S, (
            f"{name}: POR {on_s * 1000:.1f}ms vs full {off_s * 1000:.1f}ms"
        )

        if on.states_visited < off.states_visited:
            strict_reductions += 1
        pruned = (
            on.por_stats.transitions_pruned
            if on.por_stats is not None else 0
        )
        saved_pct = (
            100.0 * (off.states_visited - on.states_visited)
            / off.states_visited
        )
        dyn_saved_pct = (
            100.0 * (off.states_visited - dyn.states_visited)
            / off.states_visited
        )
        sym_saved_pct = (
            100.0 * (off.states_visited - sym.states_visited)
            / off.states_visited
        )
        if (name.startswith(("mcslock/", "queue/"))
                and saved_pct <= 20.0 and dyn_saved_pct >= 30.0):
            dynamic_payoff_rows += 1
        rows.append([
            name,
            off.states_visited,
            on.states_visited,
            f"{saved_pct:.1f}%",
            dyn.states_visited,
            f"{dyn_saved_pct:.1f}%",
            sym.states_visited,
            f"{interp_s * 1000:.1f}",
            f"{off_s * 1000:.1f}",
            f"{on_s * 1000:.1f}",
            f"{dyn_s * 1000:.1f}",
            f"{shard_s * 1000:.1f}",
        ])
        data["programs"][name] = {
            "states_full": off.states_visited,
            "states_por": on.states_visited,
            "states_saved_pct": saved_pct,
            "states_dpor": dyn.states_visited,
            "states_saved_dpor_pct": dyn_saved_pct,
            "states_dpor_symmetry": sym.states_visited,
            "states_saved_dpor_symmetry_pct": sym_saved_pct,
            "states_sharded2": shard.states_visited,
            "sleep_pruned": (
                dyn.por_stats.sleep_pruned
                if dyn.por_stats is not None else 0
            ),
            "symmetry_merged": (
                sym.por_stats.symmetry_merged
                if sym.por_stats is not None else 0
            ),
            "transitions_full": off.transitions_taken,
            "transitions_por": on.transitions_taken,
            "transitions_pruned": pruned,
            "seconds_interpreted": interp_s,
            "seconds_full": off_s,
            "seconds_por": on_s,
            "seconds_dpor": dyn_s,
            "seconds_dpor_symmetry": sym_s,
            "seconds_sharded2": shard_s,
            "outcomes_equal": True,
        }

    data["strict_reductions"] = strict_reductions
    data["dynamic_payoff_rows"] = dynamic_payoff_rows
    if not SMOKE:
        # Acceptance: the static reduction must strictly shrink the
        # state space on at least 3 benchmarked programs, and the
        # dynamic rule must save ≥30% of states on at least 2
        # mcslock/queue rows where the static rule manages ≤20%.
        assert strict_reductions >= 3, strict_reductions
        assert dynamic_payoff_rows >= 2, dynamic_payoff_rows

    lines = [
        "Identical final outcomes, UB reasons and assertion verdicts "
        "across interpreted, compiled, compiled+POR, dynamic-POR, "
        "dynamic-POR+symmetry and sharded-2-worker sweeps on every "
        f"row ({strict_reductions} rows strictly reduced by the static "
        f"rule; {dynamic_payoff_rows} mcslock/queue rows where the "
        "dynamic rule saves ≥30% while the static rule manages ≤20%; "
        "static POR never exceeds 1.5x the full sweep — the dynamic "
        "reducer is exempt from that guard, trading time for pruning "
        "depth; sharding visits exactly the full state count).",
        "",
    ]
    lines += fmt_table(
        ["program", "states full", "states POR", "saved",
         "states dPOR", "saved", "states dPOR+sym",
         "interp (ms)", "compiled (ms)", "POR (ms)", "dPOR (ms)",
         "shard2 (ms)"],
        rows,
    )
    record("explore",
           "Exploration: compiled stepper and the reduction stack",
           lines, data)


def test_compiled_step_relation_speedup():
    """Enumerate the successor relation over QueueNondet/tso's reachable
    set both ways: pair-for-pair identical, and the compiled path at
    least ``RELATION_SPEEDUP_FLOOR`` times faster."""
    from repro.errors import StateBudgetExceeded

    study = load("queue")
    checked = check_program(study.source, "<queue>")
    machine = translate_level(
        checked.contexts["QueueNondet"], memory_model="tso"
    )
    stepper = stepper_for(machine)
    assert stepper is not None and stepper.fallback_steps == 0

    explorer = Explorer(machine, RELATION_CAP, compiled=True)
    states = []
    try:
        for state in explorer.reachable_states():
            states.append(state)
    except StateBudgetExceeded:
        pass  # smoke cap: benchmark over the admitted prefix
    fn = stepper.fn

    # Bit-identical relation, checked pair-for-pair on a sample (the
    # exhaustive check lives in tests/test_stepc.py; here it guards the
    # numbers below against measuring different work).
    for state in states[:500]:
        pairs = fn(state)
        transitions = machine.enabled_transitions(state)
        assert [p[0] for p in pairs] == transitions
        for (_, nxt), tr in zip(pairs, transitions):
            assert nxt == machine.next_state(state, tr)

    def time_interpreted() -> float:
        started = time.perf_counter()
        for state in states:
            for tr in machine.enabled_transitions(state):
                machine.next_state(state, tr)
        return time.perf_counter() - started

    def time_compiled() -> float:
        started = time.perf_counter()
        for state in states:
            fn(state)
        return time.perf_counter() - started

    # Warm both paths, then take the best of 3 rounds each with the GC
    # parked: its pauses scale with the retained state graph and would
    # otherwise dominate run-to-run noise.
    time_compiled()
    time_interpreted()
    gc.collect()
    gc.freeze()
    gc.disable()
    try:
        interp_s = min(time_interpreted() for _ in range(3))
        compiled_s = min(time_compiled() for _ in range(3))
    finally:
        gc.enable()
        gc.unfreeze()
    speedup = interp_s / compiled_s

    lines = [
        f"QueueNondet/tso, {len(states)} reachable states: enumerating "
        "the full successor relation (enabled transitions + successor "
        "construction) pair-for-pair identically.",
        "",
    ]
    lines += fmt_table(
        ["mode", "time (ms)", "speedup"],
        [
            ["interpreted", f"{interp_s * 1000:.1f}", "1.0x"],
            ["compiled", f"{compiled_s * 1000:.1f}",
             f"{speedup:.1f}x"],
        ],
    )
    record("explore_relation",
           "Exploration: compiled step-relation enumeration", lines, {
               "smoke": SMOKE,
               "states": len(states),
               "seconds_interpreted": interp_s,
               "seconds_compiled": compiled_s,
               "speedup": speedup,
           })
    assert speedup >= RELATION_SPEEDUP_FLOOR, (
        f"compiled step relation only {speedup:.1f}x faster "
        f"(floor {RELATION_SPEEDUP_FLOOR}x)"
    )


def test_sharded_scaling_queue_nondet():
    """Sharded exploration of the largest level at 1/2/4 workers:
    identical verdicts and exact state/transition parity at every
    width, wall-clocks recorded with the host core count.  The
    speedup assertion only fires on hosts with ≥4 cores — a
    single-core host serializes the workers, so sharding there pays
    IPC for no overlap and the honest numbers show it."""
    from repro.explore import canonical_replay

    study = load("queue")
    checked = check_program(study.source, "<queue>")
    machine = translate_level(
        checked.contexts["QueueNondet"], memory_model="tso"
    )
    budget = 400_000
    cores = os.cpu_count() or 1

    single, single_s = _explore(machine, budget, repeats=1)
    assert not single.hit_state_budget

    widths = (2,) if SMOKE else (2, 4)
    rows = [["single", 1, single.states_visited,
             f"{single_s * 1000:.1f}", "1.00x"]]
    data: dict = {
        "smoke": SMOKE,
        "cpu_count": cores,
        "states": single.states_visited,
        "transitions": single.transitions_taken,
        "seconds_single": single_s,
        "workers": {},
    }
    sharded_seconds = {}
    for workers in widths:
        sharded, sharded_s = _explore_sharded(
            machine, budget, workers=workers
        )
        # A partition, not a reduction: exact parity with the
        # single-process sweep.
        assert sharded.states_visited == single.states_visited, workers
        assert sharded.transitions_taken == \
            single.transitions_taken, workers
        assert sharded.final_outcomes == single.final_outcomes, workers
        assert set(sharded.ub_reasons) == set(single.ub_reasons), workers
        assert sharded.assert_failures == \
            single.assert_failures, workers
        # Any counterexample trace must replay on a fresh machine.
        for reason, trace in zip(sharded.ub_reasons, sharded.ub_traces):
            fresh = translate_level(
                checked.contexts["QueueNondet"], memory_model="tso"
            )
            final = canonical_replay(fresh, trace)
            assert final.termination is not None
            assert final.termination.detail == reason
        sharded_seconds[workers] = sharded_s
        rows.append([
            "sharded", workers, sharded.states_visited,
            f"{sharded_s * 1000:.1f}",
            f"{single_s / sharded_s:.2f}x",
        ])
        data["workers"][str(workers)] = {
            "seconds": sharded_s,
            "speedup_vs_single": single_s / sharded_s,
        }

    lines = [
        f"QueueNondet/tso, {single.states_visited} states, host has "
        f"{cores} core(s).  Sharding partitions the interned state "
        "space by a shared-memory-projection hash; workers exchange "
        "frontier states in level-synchronized rounds, so merged "
        "verdicts, state counts and trace lengths are identical to "
        "the single-process sweep at every width.",
        "",
    ]
    lines += fmt_table(
        ["mode", "workers", "states", "time (ms)", "speedup"], rows
    )
    if cores < 4:
        lines += [
            "",
            f"NOTE: only {cores} core(s) available — worker processes "
            "serialize, so the sharded wall-clocks above measure "
            "protocol overhead, not parallel speedup.  The "
            "beats-single assertion is skipped on this host.",
        ]
    record("explore_sharded",
           "Exploration: hash-sharded multi-process scaling",
           lines, data)
    if cores >= 4 and not SMOKE:
        assert sharded_seconds[4] < single_s, (
            f"sharded-4 {sharded_seconds[4]:.2f}s did not beat "
            f"single {single_s:.2f}s on a {cores}-core host"
        )
