"""Partial-order reduction: payoff and equivalence, measured.

For every case-study level and a set of TSO litmus shapes, the state
space is explored twice — full interleaving fan-out vs ample-set
reduction (``repro.explore.por``) — and the run asserts the two sweeps
are *observationally identical* (same final outcomes, same UB reasons,
same budget status) while recording how many states/transitions the
reduction saved.  Results land in ``benchmarks/results/explore.{md,json}``.

Set ``BENCH_EXPLORE_SMOKE=1`` to restrict the sweep to the smallest
case study (CI's bench-smoke step).
"""

from __future__ import annotations

import os
import time

from _common import fmt_table, record
from repro.casestudies import ALL, load
from repro.explore import Explorer
from repro.lang.frontend import check_level, check_program
from repro.machine.translator import translate_level

#: Explorer budget per study (mcslock/queue need the larger bound).
STUDY_BUDGETS = {
    "tsp": 200_000,
    "barrier": 200_000,
    "pointers": 200_000,
    "mcslock": 400_000,
    "queue": 400_000,
}

LITMUS_BUDGET = 200_000

SMOKE = os.environ.get("BENCH_EXPLORE_SMOKE") == "1"


def _print_regs(*names: str) -> str:
    parts = []
    for i, name in enumerate(names):
        parts.append(f"var s{i}: uint32 := 0; s{i} := {name}; "
                     f"print_uint32(s{i});")
    return " ".join(parts)


#: The classic x86-TSO shapes (see tests/test_tso_litmus.py).  IRIW is
#: omitted: its 4M-state space makes the unreduced baseline too slow
#: for a benchmark that runs both sides.
LITMUS = {
    "SB": (
        "var x: uint32; var y: uint32; var r1: uint32; var r2: uint32; "
        "void t1() { x := 1; r1 := y; fence(); } "
        "void main() { var a: uint64 := 0; a := create_thread t1(); "
        "y := 1; r2 := x; join a; fence(); "
        + _print_regs("r1", "r2") + " }"
    ),
    "MP": (
        "var data: uint32; var flag: uint32; "
        "var rf: uint32; var rd: uint32; "
        "void writer() { data := 42; flag := 1; } "
        "void main() { var a: uint64 := 0; "
        "a := create_thread writer(); "
        "rf := flag; rd := data; join a; fence(); "
        + _print_regs("rf", "rd") + " }"
    ),
    "LB": (
        "var x: uint32; var y: uint32; "
        "var r1: uint32; var r2: uint32; "
        "void t1() { r1 := x; y := 1; } "
        "void main() { var a: uint64 := 0; a := create_thread t1(); "
        "r2 := y; x := 1; join a; fence(); "
        + _print_regs("r1", "r2") + " }"
    ),
    "CoRR": (
        "var x: uint32; var r1: uint32; var r2: uint32; "
        "void writer() { x := 1; } "
        "void main() { var a: uint64 := 0; "
        "a := create_thread writer(); "
        "r1 := x; r2 := x; join a; fence(); "
        + _print_regs("r1", "r2") + " }"
    ),
}


def _workloads():
    """Yield (name, machine, budget) for every benchmarked program."""
    studies = ["tsp"] if SMOKE else sorted(ALL)
    for name in studies:
        study = load(name)
        checked = check_program(study.source, f"<{name}>")
        for level in checked.program.levels:
            yield (
                f"{name}/{level.name}",
                translate_level(checked.contexts[level.name]),
                STUDY_BUDGETS[name],
            )
    if SMOKE:
        return
    for name, source in LITMUS.items():
        machine = translate_level(
            check_level("level L { " + source + " }")
        )
        yield f"litmus/{name}", machine, LITMUS_BUDGET


def _explore(machine, budget: int, por: bool):
    started = time.perf_counter()
    result = Explorer(machine, budget, por=por).explore()
    return result, time.perf_counter() - started


def test_por_equivalence_and_payoff():
    rows = []
    data: dict = {"smoke": SMOKE, "programs": {}}
    strict_reductions = 0

    for name, machine, budget in _workloads():
        off, off_s = _explore(machine, budget, por=False)
        on, on_s = _explore(machine, budget, por=True)

        # Observational equivalence: the reduction may only shrink the
        # number of intermediate states, never change what the program
        # can do.
        assert not off.hit_state_budget, name
        assert on.hit_state_budget == off.hit_state_budget, name
        assert on.final_outcomes == off.final_outcomes, name
        assert sorted(on.ub_reasons) == sorted(off.ub_reasons), name
        assert on.assert_failures == off.assert_failures, name
        assert on.states_visited <= off.states_visited, name

        if on.states_visited < off.states_visited:
            strict_reductions += 1
        pruned = (
            on.por_stats.transitions_pruned
            if on.por_stats is not None else 0
        )
        saved_pct = (
            100.0 * (off.states_visited - on.states_visited)
            / off.states_visited
        )
        rows.append([
            name,
            off.states_visited,
            on.states_visited,
            f"{saved_pct:.1f}%",
            off.transitions_taken,
            on.transitions_taken,
            pruned,
            f"{off_s * 1000:.1f}",
            f"{on_s * 1000:.1f}",
        ])
        data["programs"][name] = {
            "states_full": off.states_visited,
            "states_por": on.states_visited,
            "states_saved_pct": saved_pct,
            "transitions_full": off.transitions_taken,
            "transitions_por": on.transitions_taken,
            "transitions_pruned": pruned,
            "seconds_full": off_s,
            "seconds_por": on_s,
            "outcomes_equal": True,
        }

    data["strict_reductions"] = strict_reductions
    if not SMOKE:
        # Acceptance: the reduction must strictly shrink the state
        # space on at least 3 benchmarked programs.
        assert strict_reductions >= 3, strict_reductions

    lines = [
        "Identical final outcomes, UB reasons and assertion verdicts "
        "with and without ample-set reduction on every row "
        f"({strict_reductions} rows strictly reduced).",
        "",
    ]
    lines += fmt_table(
        ["program", "states full", "states POR", "saved",
         "transitions full", "transitions POR", "pruned",
         "full (ms)", "POR (ms)"],
        rows,
    )
    record("explore",
           "Exploration: partial-order reduction payoff", lines, data)
