"""Resilience overhead: fault tolerance must be free when nothing fails.

The farm's resilience layer (deadlines, retries, fault hooks —
:mod:`repro.farm.resilience`) wraps every obligation execution, but with
no deadlines armed and no fault plan loaded the per-job cost is a few
``is None`` tests and one no-op rule lookup, after which the worker
takes the same zero-overhead fast path as before (``job.thunk()``
called directly, no deadline thread).  This benchmark quantifies that:

* **micro** — the per-job cost of the resilience bookkeeping a
  fault-free run performs (chain-expiry check, fault lookup, budget
  computation), in nanoseconds;
* **macro** — the TSP refinement chain verified with the resilience
  layer active vs. bypassed (``resilience=None``), plus the asserted
  arithmetic bound: the per-job bookkeeping, charged to every
  obligation of the chain, must stay under 5% of the bypassed run's
  wall time.  The direct wall-clock delta is recorded for the report
  but not asserted — at this chain's size it sits inside timing noise,
  which is exactly the point.

Results land in ``benchmarks/results/faults_overhead.{md,json}``.
"""

from __future__ import annotations

import os
import time

from _common import fmt_table, record
from repro.farm import FarmConfig, VerificationFarm, run_jobs
from repro.farm.resilience import ResilienceConfig
from repro.faults.plan import PHASE_EXECUTE
from repro.lang.frontend import check_program
from repro.proofs.engine import ProofEngine

MICRO_ITERS = 100_000
ROUNDS = 5
MAX_OVERHEAD = 0.05

EXAMPLE = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "examples", "running_example.arm",
)


class _BypassFarm(VerificationFarm):
    """A farm with the resilience layer switched off entirely — the
    pre-resilience code path, used as the overhead baseline."""

    def discharge(self, jobs):
        return run_jobs(
            jobs,
            mode=self.config.resolved_mode(),
            max_workers=self.config.jobs,
            cache=self.cache,
            events=self.events,
            resilience=None,
        )


def _per_job_bookkeeping_ns() -> float:
    """Nanoseconds of resilience bookkeeping per fault-free job."""
    res = ResilienceConfig()
    res.arm()
    started = time.perf_counter()
    for index in range(MICRO_ITERS):
        res.chain_expired()
        res.fault(PHASE_EXECUTE, index, "proof:lemma", 0)
        res.attempt_budget()
    return (time.perf_counter() - started) / MICRO_ITERS * 1e9


def _verify_seconds(farm_cls) -> tuple[float, object, int]:
    with open(EXAMPLE, encoding="utf-8") as handle:
        source = handle.read()
    checked = check_program(source, EXAMPLE)
    farm = farm_cls(FarmConfig())
    started = time.perf_counter()
    outcome = ProofEngine(checked, farm=farm).run_all()
    return (
        time.perf_counter() - started,
        outcome,
        farm.summary().jobs,
    )


def test_resilient_mode_overhead_is_under_5_percent():
    bookkeeping_ns = min(
        _per_job_bookkeeping_ns() for _ in range(ROUNDS)
    )

    baseline_s, resilient_s = None, None
    jobs = 0
    for _ in range(ROUNDS):  # interleave to damp frequency noise
        seconds, outcome, jobs = _verify_seconds(_BypassFarm)
        assert outcome.success
        baseline_s = seconds if baseline_s is None \
            else min(baseline_s, seconds)
        seconds, outcome, jobs = _verify_seconds(VerificationFarm)
        assert outcome.success
        resilient_s = seconds if resilient_s is None \
            else min(resilient_s, seconds)

    overhead = (jobs * bookkeeping_ns * 1e-9) / baseline_s
    measured_delta = resilient_s / baseline_s - 1.0

    rows = [
        ["per-job bookkeeping", f"{bookkeeping_ns:.0f} ns"],
        ["chain obligations", str(jobs)],
        ["verify, resilience bypassed", f"{baseline_s * 1e3:.1f} ms"],
        ["verify, resilience active", f"{resilient_s * 1e3:.1f} ms"],
        ["asserted overhead bound", f"{overhead:.3%}"],
        ["measured wall delta (noisy)", f"{measured_delta:+.1%}"],
    ]
    record(
        "faults_overhead",
        "Resilience overhead with zero faults (repro.farm)",
        [
            f"TSP refinement chain ({jobs} farm obligations), best of "
            f"{ROUNDS} interleaved rounds.",
            "",
            *fmt_table(["measurement", "value"], rows),
        ],
        data={
            "per_job_bookkeeping_ns": bookkeeping_ns,
            "chain_obligations": jobs,
            "baseline_seconds": baseline_s,
            "resilient_seconds": resilient_s,
            "asserted_overhead": overhead,
            "measured_wall_delta": measured_delta,
            "bound": MAX_OVERHEAD,
        },
    )

    assert overhead < MAX_OVERHEAD, (
        f"fault-free resilience overhead {overhead:.2%} exceeds "
        f"{MAX_OVERHEAD:.0%}"
    )


if __name__ == "__main__":
    import pathlib
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).parent))
    test_resilient_mode_overhead_is_under_5_percent()
    print("ok — see benchmarks/results/faults_overhead.md")
