"""Ablation: encapsulated nondeterminism (§4.1) in reduction proofs.

The paper: "our representation of a step encapsulates all
non-determinism, so it is straightforward to describe such an s2' as
NextState(s1, sigma_j).  This simplifies proof generation
significantly, as we do not need code that can construct
alternative-universe intermediate states for arbitrary commutations."

The ablation compares the two ways of discharging a commutativity
lemma over the MCSLock study's reachable states:

* **encapsulated** — deterministic replay: the intermediate state is
  ``next_state(s1, sigma_j)`` with σ's recorded parameters;
* **existential** — parameter search: enumerate every parameter
  assignment of both steps, looking for *some* intermediate state that
  completes the commutation (what a generator without encapsulation
  would have to emit).

Both must agree on every verdict; the existential search does strictly
more work per lemma.
"""

from __future__ import annotations

import time

from _common import fmt_table, record
from repro.casestudies import mcslock
from repro.errors import StateBudgetExceeded
from repro.explore.explorer import Explorer
from repro.lang.frontend import check_program
from repro.machine.program import Transition
from repro.machine.translator import translate_level
from repro.proofs.library import right_mover_at


def _setup():
    study = mcslock.get()
    checked = check_program(study.source)
    machine = translate_level(checked.contexts["MCSAssume"])
    states = []
    try:
        for state in Explorer(machine, 100_000).reachable_states():
            states.append(state)
    except StateBudgetExceeded:
        # The timing ablation samples commutation pairs; an explicitly
        # truncated prefix of the state space is acceptable here.
        pass
    pairs = []
    for state in states:
        transitions = machine.enabled_transitions(state)
        for t1 in transitions:
            if t1.is_drain:
                continue
            for t2 in transitions:
                if t2.tid != t1.tid:
                    pairs.append((state, t1, t2))
    return machine, pairs


def _existential_commutes(machine, state, first, second) -> bool:
    """Right-mover check without encapsulated nondeterminism: search
    all parameter assignments for a completing intermediate state."""
    s2 = machine.next_state(state, first)
    if not s2.running:
        return True
    second_variants = [
        Transition(second.tid, second.step, params)
        for params in machine.param_assignments(
            second.step, "", s2, second.tid
        )
    ] if not second.is_drain else [second]
    target_states = set()
    for variant in second_variants:
        from repro.proofs.library import _transition_enabled

        if _transition_enabled(machine, s2, variant):
            target_states.add(machine.next_state(s2, variant))
    if not target_states:
        return True
    # Search: does some (second'; first') path reach each target?
    for target in target_states:
        found = False
        for variant in second_variants:
            from repro.proofs.library import _transition_enabled

            if not _transition_enabled(machine, state, variant):
                continue
            mid = machine.next_state(state, variant)
            if not mid.running:
                continue
            first_variants = [
                Transition(first.tid, first.step, params)
                for params in machine.param_assignments(
                    first.step, "", mid, first.tid
                )
            ]
            for fv in first_variants:
                if _transition_enabled(machine, mid, fv) and \
                        machine.next_state(mid, fv) == target:
                    found = True
                    break
            if found:
                break
        if not found:
            return False
    return True


def test_ablation_nondet_encapsulation(benchmark):
    machine, pairs = _setup()
    sample = pairs[: min(len(pairs), 4000)]

    def encapsulated():
        return [
            right_mover_at(machine, s, t1, t2) for s, t1, t2 in sample
        ]

    verdicts_fast = benchmark.pedantic(encapsulated, rounds=1,
                                       iterations=1)
    started = time.perf_counter()
    fast_time = None
    t0 = time.perf_counter()
    verdicts_fast2 = encapsulated()
    fast_time = time.perf_counter() - t0

    t0 = time.perf_counter()
    verdicts_slow = [
        _existential_commutes(machine, s, t1, t2) for s, t1, t2 in sample
    ]
    slow_time = time.perf_counter() - t0

    disagreements = sum(
        1 for a, b in zip(verdicts_fast2, verdicts_slow) if a != b and a
    )
    lines = fmt_table(
        ["variant", "check time (s)", "pairs checked"],
        [
            ["encapsulated (NextState replay)", f"{fast_time:.3f}",
             len(sample)],
            ["existential parameter search", f"{slow_time:.3f}",
             len(sample)],
        ],
    )
    slowdown = slow_time / max(fast_time, 1e-9)
    lines += [
        "",
        f"Existential search costs {slowdown:.1f}x the encapsulated "
        "replay on the MCSLock commutativity obligations.",
        f"Verdicts where replay succeeds but search fails: "
        f"{disagreements} (must be 0 — encapsulation loses no proofs).",
    ]
    assert disagreements == 0
    assert slowdown > 1.0
    record(
        "ablation_nondet_encapsulation",
        "Ablation — encapsulated nondeterminism (sec. 4.1)",
        lines,
    )
