"""Figure 12: lock-free queue throughput, verified vs. unverified.

Paper setup: liblfds's built-in benchmark, queue size 512, 1,000
trials; four bars — liblfds (GCC), liblfds-modulo (GCC), Armada (GCC),
Armada (CompCertTSO).  Findings: "The Armada version compiled with
CompCertTSO achieves 70% of the throughput of the liblfds version
compiled with GCC. ... when we remove these factors [modulo + old
compiler], we achieve virtually identical performance (99% of
throughput)."

Our bars (see DESIGN.md for the substitution):

* liblfds (bitmask) — native-Python port of the liblfds queue;
* liblfds-modulo    — same with modulo index arithmetic;
* Armada (aggressive backend)   — the verified Armada port compiled by
  the GCC-analogue backend;
* Armada (conservative backend) — the same port compiled by the
  CompCertTSO-analogue backend.

Shape requirements: Armada(aggressive) is close to liblfds-modulo (the
paper's 99% claim) and Armada(conservative) reaches a substantial
fraction of, but clearly less than, liblfds (the paper's 70% claim —
see EXPERIMENTS.md for the measured factor).
"""

from __future__ import annotations

from _common import fmt_table, interleaved_best, record
from repro.lfds import (
    BoundedSPSCQueue,
    BoundedSPSCQueueModulo,
    single_thread_throughput,
)
from repro.lfds.armada_port import compile_port, throughput

QUEUE_SIZE = 512
OPERATIONS = 60_000
ROUNDS = 5


def _bars() -> dict[str, float]:
    workloads = {
        "liblfds (bitmask)": lambda: single_thread_throughput(
            BoundedSPSCQueue, QUEUE_SIZE, OPERATIONS
        ).ops_per_second,
        "liblfds-modulo": lambda: single_thread_throughput(
            BoundedSPSCQueueModulo, QUEUE_SIZE, OPERATIONS
        ).ops_per_second,
        "Armada (aggressive backend)": lambda: throughput(
            "sc", OPERATIONS
        ).ops_per_second,
        "Armada (conservative backend)": lambda: throughput(
            "conservative", OPERATIONS
        ).ops_per_second,
    }
    return interleaved_best(workloads, rounds=ROUNDS)


def test_fig12_queue_throughput(benchmark):
    # Functional agreement first: all variants drain FIFO.
    for mode in ("sc", "conservative"):
        assert compile_port(mode).run() == [41, 42]

    bars = benchmark.pedantic(_bars, rounds=1, iterations=1)

    bitmask = bars["liblfds (bitmask)"]
    modulo = bars["liblfds-modulo"]
    aggressive = bars["Armada (aggressive backend)"]
    conservative = bars["Armada (conservative backend)"]

    rows = [
        [name, f"{ops / 1e6:.2f}", f"{ops / bitmask:.2f}"]
        for name, ops in bars.items()
    ]
    lines = fmt_table(
        ["variant", "throughput (Mops/s)", "vs liblfds"], rows
    )
    lines += [
        "",
        f"Armada(aggressive) / liblfds-modulo = "
        f"{aggressive / modulo:.2f} (paper: 0.99)",
        f"Armada(conservative) / liblfds = "
        f"{conservative / bitmask:.2f} (paper: 0.70)",
        "",
        "Shape checks:",
    ]
    checks = {
        "Armada(aggressive) within 35% of liblfds-modulo "
        "(paper: virtually identical)": aggressive >= 0.65 * modulo,
        "Armada(conservative) is the slowest bar":
            conservative == min(bars.values()),
        "Armada(conservative) still a substantial fraction "
        "(>= 20% of liblfds)": conservative >= 0.20 * bitmask,
        "the unverified native ports lead":
            max(bitmask, modulo) == max(bars.values()),
    }
    for claim, ok in checks.items():
        lines.append(f"- {'PASS' if ok else 'FAIL'}: {claim}")
        assert ok, (claim, bars)
    record(
        "fig12_queue_throughput", "Figure 12 — queue throughput", lines,
        {k: v for k, v in bars.items()},
    )
