"""Static-analyzer cost and the tso_elim fast-path payoff.

Two questions, answered with wall-clock numbers under
``benchmarks/results/analysis.{md,json}``:

* **How expensive is the analyzer?**  Full ``analyze_level`` (access
  extraction, locksets, bounded dynamic cross-check, ownership
  synthesis) over each case study's implementation level.
* **What does the proof-engine fast path buy?**  A synthetic
  refinement whose tso_elim target is provably thread-local, verified
  with ``analyze=True`` (ownership obligations discharged trivially
  from the analyzer's verdict) vs ``analyze=False`` (every obligation
  enumerates the reachable states).  The slow path pays one
  state-space sweep per ``AccessRequiresOwnership`` lemma — one per
  statement touching the location — so the gap widens with the number
  of accesses; the analyzer walks the state space once, regardless.
"""

from __future__ import annotations

import time

from _common import fmt_table, record
from repro.analysis import analyze_level
from repro.casestudies import ALL, load
from repro.lang.frontend import check_program
from repro.proofs.engine import verify_source

#: Explorer budget per study (mcslock/queue need the larger bound).
STUDY_BUDGETS = {
    "tsp": 200_000,
    "barrier": 200_000,
    "pointers": 200_000,
    "mcslock": 400_000,
    "queue": 400_000,
}

ROUNDS = 3


def _best(fn) -> tuple[float, object]:
    """Best-of-N wall time plus the (warmup) result value."""
    result = fn()
    best = float("inf")
    for _ in range(ROUNDS):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def _fastpath_program(accesses: int = 10, iters: int = 3) -> str:
    """A single-threaded chain with *accesses* assignments to the
    eliminated location per loop iteration."""

    def level(name: str, assign: str) -> str:
        body = " ".join(f"x {assign} x + 1;" for _ in range(accesses))
        return (
            f"level {name} {{ var x: uint32 := 0; void main() {{ "
            f"var i: uint32 := 0; while i < {iters} {{ "
            f"{body} i := i + 1; }} print_uint32(x); }} }}"
        )

    return (
        level("Low", ":=") + "\n" + level("High", "::=") + "\n"
        'proof P { refinement Low High tso_elim x "true" }\n'
    )


def test_analysis_cost_and_fastpath():
    rows = []
    data: dict = {"analyzer": {}, "fastpath": {}}

    for name in sorted(ALL):
        study = load(name)
        checked = check_program(study.source, f"<{name}>")
        level_name = checked.program.levels[0].name
        ctx = checked.contexts[level_name]
        budget = STUDY_BUDGETS[name]

        elapsed, result = _best(
            lambda: analyze_level(ctx, max_states=budget)
        )
        assert result.dynamic is not None and result.dynamic.complete
        rows.append([
            name,
            level_name,
            len(result.verdicts),
            result.dynamic.states_visited,
            ",".join(result.racy()) or "—",
            f"{elapsed * 1000:.1f}",
        ])
        data["analyzer"][name] = {
            "level": level_name,
            "globals": len(result.verdicts),
            "states": result.dynamic.states_visited,
            "racy": result.racy(),
            "seconds": elapsed,
        }

    program = _fastpath_program()

    def run(analyze: bool):
        outcome = verify_source(program, analyze=analyze)
        assert outcome.success
        return outcome

    slow_s, slow = _best(lambda: run(False))
    fast_s, fast = _best(lambda: run(True))
    assert any(
        "provably thread-local" in note for note in fast.analysis_notes
    )
    slow_lemmas = slow.outcomes[0].lemma_count
    fast_lemmas = fast.outcomes[0].lemma_count
    # The fast path collapses the per-access obligations into three
    # trivially discharged lemmas.
    assert fast_lemmas < slow_lemmas

    data["fastpath"] = {
        "verify_seconds_no_analyze": slow_s,
        "verify_seconds_analyze": fast_s,
        "speedup": slow_s / fast_s if fast_s else None,
        "lemmas_no_analyze": slow_lemmas,
        "lemmas_analyze": fast_lemmas,
    }

    lines = ["## Analyzer wall time (implementation levels)", ""]
    lines += fmt_table(
        ["study", "level", "globals", "states scanned", "RACY",
         "analyze (ms)"],
        rows,
    )
    lines += [
        "",
        "## tso_elim fast path (thread-local target, "
        "10 accesses x 3 iterations)",
        "",
    ]
    lines += fmt_table(
        ["configuration", "verify (ms)", "lemmas"],
        [
            ["analyze=False (enumerate states per obligation)",
             f"{slow_s * 1000:.1f}", slow_lemmas],
            ["analyze=True (analyzer verdict discharges ownership)",
             f"{fast_s * 1000:.1f}", fast_lemmas],
        ],
    )
    lines += [
        "",
        f"Fast-path speedup: {slow_s / fast_s:.2f}x "
        "(includes the analyzer's own dynamic scan).",
    ]
    record("analysis", "Static analysis: cost and fast-path payoff",
           lines, data)
