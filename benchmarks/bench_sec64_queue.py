"""§6.4 Queue (proof side): the liblfds SPSC queue refined to an
abstract sequence.

Paper: "The implementation is 70 SLOC.  We use eight proof
transformations, the fourth of which does the key weakening ... The
first three proof transformations introduce the abstract queue using
recipes with a total of 12 SLOC. ... The final four levels hide the
implementation variables ... leading to a final layer with 46 SLOC.
From all our recipes, Armada generates 24,540 SLOC of proof."

The benchmark verifies the chain and checks the structural shape: an
introduce phase, a key weakening in the middle, and a hiding phase that
leaves a small abstract final level.
"""

from __future__ import annotations

from _common import fmt_table, record
from repro.casestudies import queue, run_case_study
from repro.casestudies.common import sloc


def test_sec64_queue(benchmark):
    study = queue.get()

    def verify():
        report = run_case_study(study)
        assert report.verified
        return report

    report = benchmark.pedantic(verify, rounds=1, iterations=1)
    rows = report.rows()
    paper = study.paper_numbers

    lines = fmt_table(
        ["transformation", "strategy", "recipe SLOC", "generated SLOC"],
        [
            [r["proof"], r["strategy"], r["recipe_sloc"],
             r["generated_sloc"]]
            for r in rows
        ],
    )
    final_sloc = sloc(study.levels[-1][1])
    lines += [
        "",
        f"Implementation: {study.implementation_sloc} SLOC (paper: "
        f"{paper['implementation_sloc']}).",
        f"Transformations: {len(rows)} over {len(study.levels)} levels "
        f"(paper: {paper['transformations']}).",
        f"Final abstract level: {final_sloc} SLOC (paper: "
        f"{paper['final_level_sloc']}).",
        f"Total generated proof: {report.total_generated_sloc} SLOC "
        f"(paper: {paper['generated_sloc']}).",
        "",
        "Shape checks:",
    ]
    strategies = [r["strategy"] for r in rows]
    checks = {
        "chain verified end to end": report.verified,
        "introduce phase first (var_intro)":
            strategies[0] == "var_intro",
        "inductive-invariant cementing next (assume_intro)":
            strategies[1] == "assume_intro",
        "the key weakening sits mid-chain":
            "weakening" in strategies[2:4],
        "hiding phase closes the chain":
            all(s == "var_hiding" for s in strategies[-3:]),
        "final level smaller than the implementation":
            final_sloc <= study.implementation_sloc,
        "generated proof dwarfs the recipes":
            report.total_generated_sloc
            > 20 * max(1, report.total_recipe_sloc),
    }
    for claim, ok in checks.items():
        lines.append(f"- {'PASS' if ok else 'FAIL'}: {claim}")
        assert ok, claim
    record("sec64_queue", "Sec. 6.4 — Queue (verification)", lines)
