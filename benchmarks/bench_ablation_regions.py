"""Ablation: region-based pointer reasoning (§4.1.1).

Three configurations of the Pointers study's recipe:

* ``use_regions`` — Steensgaard's analysis proves non-aliasing; the
  reordering lemma discharges locally (the paper's configuration);
* ``use_address_invariant`` — the simpler "all addresses valid and
  distinct" invariant; without the points-to regions the reordering
  correspondence cannot be justified;
* no pointer reasoning at all — same failure.

Also measures Steensgaard's almost-linear scaling on synthetic levels
with growing pointer counts.
"""

from __future__ import annotations

import time

from _common import fmt_table, record
from repro.casestudies import pointers
from repro.lang.frontend import check_level
from repro.proofs.engine import verify_source
from repro.strategies.regions import analyze_regions


def _with_recipe(directive: str) -> str:
    study = pointers.get()
    recipe = (
        "proof PointersProof {\n"
        "  refinement PointersImpl PointersReordered\n"
        "  weakening\n"
        f"  {directive}\n"
        "}\n"
    )
    return "\n".join(text for _, text in study.levels) + recipe


def _synthetic_level(n: int) -> str:
    decls = "\n".join(f"  var g{i}: uint32 := 0;" for i in range(n))
    body = "\n".join(
        f"    var p{i}: ptr<uint32> := null;\n"
        f"    p{i} := &g{i};\n"
        f"    *p{i} := {i};"
        for i in range(n)
    )
    return (
        f"level Synth {{\n{decls}\n  void main() {{\n{body}\n  }}\n}}\n"
    )


def test_ablation_regions(benchmark):
    def with_regions():
        outcome = verify_source(_with_recipe("use_regions")).outcomes[0]
        assert outcome.success, outcome.error
        return outcome

    outcome = benchmark.pedantic(with_regions, rounds=1, iterations=1)

    addr_outcome = verify_source(
        _with_recipe("use_address_invariant")
    ).outcomes[0]
    bare_source = _with_recipe("use_address_invariant").replace(
        "  use_address_invariant\n", ""
    )
    bare_outcome = verify_source(bare_source).outcomes[0]

    rows = [
        ["use_regions", "verified" if outcome.success else "failed",
         outcome.lemma_count],
        [
            "use_address_invariant",
            "verified" if addr_outcome.success else "failed (expected)",
            addr_outcome.lemma_count,
        ],
        [
            "no pointer reasoning",
            "verified" if bare_outcome.success else "failed (expected)",
            bare_outcome.lemma_count,
        ],
    ]
    lines = fmt_table(["configuration", "result", "lemmas"], rows)

    # Steensgaard scaling.
    scaling = []
    for n in (8, 32, 128):
        ctx = check_level(_synthetic_level(n))
        t0 = time.perf_counter()
        analysis = analyze_regions(ctx)
        elapsed = time.perf_counter() - t0
        scaling.append([n, f"{elapsed * 1e3:.2f} ms",
                        len(analysis.regions())])
    lines += ["", "Steensgaard scaling (synthetic levels):"]
    lines += fmt_table(["pointer count", "analysis time", "regions"],
                       scaling)
    assert outcome.success
    assert not addr_outcome.success
    assert not bare_outcome.success
    record("ablation_regions", "Ablation — region reasoning (sec. 4.1.1)",
           lines)
