"""Observability overhead: tracing must be free when it is off.

``repro.obs`` instruments the farm, the proof engine, the explorer and
the prover, but every site guards itself with one ``OBS.enabled``
attribute test and hot loops batch their counts into locals.  This
benchmark quantifies the bound behind that design:

* **micro** — the per-event cost of a guarded no-op (attribute test
  plus branch) and of a null span enter/exit, in nanoseconds;
* **macro** — the TSP implementation level explored with tracing off
  vs. on, plus a worst-case arithmetic bound: even if *every* state
  and transition of the disabled sweep evaluated one guard (the real
  sites batch far more coarsely), the total guard time must stay
  under 5% of the sweep's wall time.

Results land in ``benchmarks/results/obs_overhead.{md,json}``.
"""

from __future__ import annotations

import time

from _common import fmt_table, record
from repro.casestudies import load
from repro.explore import Explorer
from repro.lang.frontend import check_program
from repro.machine.translator import translate_level
from repro.obs import OBS

MICRO_ITERS = 200_000
ROUNDS = 3
MAX_DISABLED_OVERHEAD = 0.05


def _time_guard(iterations: int) -> float:
    """Seconds for *iterations* disabled-mode guard evaluations."""
    obs = OBS
    started = time.perf_counter()
    for _ in range(iterations):
        if obs.enabled:
            obs.count("never")
    return time.perf_counter() - started


def _time_null_span(iterations: int) -> float:
    obs = OBS
    started = time.perf_counter()
    for _ in range(iterations):
        with obs.span("never"):
            pass
    return time.perf_counter() - started


def _explore_seconds(machine, trace_path=None) -> tuple[float, object]:
    if trace_path is not None:
        OBS.enable(trace_path)
    try:
        started = time.perf_counter()
        result = Explorer(machine, max_states=200_000).explore()
        return time.perf_counter() - started, result
    finally:
        if trace_path is not None:
            OBS.disable()


def test_disabled_observability_is_under_5_percent(tmp_path):
    assert not OBS.enabled

    guard_ns = min(
        _time_guard(MICRO_ITERS) for _ in range(ROUNDS)
    ) / MICRO_ITERS * 1e9
    span_ns = min(
        _time_null_span(MICRO_ITERS) for _ in range(ROUNDS)
    ) / MICRO_ITERS * 1e9

    study = load("tsp")
    checked = check_program(study.source, "<tsp>")
    level = checked.program.levels[0].name
    machine = translate_level(checked.contexts[level])

    disabled_s, result = min(
        (_explore_seconds(machine) for _ in range(ROUNDS)),
        key=lambda pair: pair[0],
    )
    enabled_s, traced = min(
        (_explore_seconds(machine, tmp_path / f"t{i}.jsonl")
         for i in range(ROUNDS)),
        key=lambda pair: pair[0],
    )
    assert traced.final_outcomes == result.final_outcomes

    # Worst-case bound: one guard per visited state AND per transition.
    # The real instrumentation batches per exploration/obligation, so
    # the true count is orders of magnitude lower.
    worst_case_guards = result.states_visited + result.transitions_taken
    overhead = (worst_case_guards * guard_ns * 1e-9) / disabled_s

    rows = [
        ["guard (disabled)", f"{guard_ns:.1f} ns/event"],
        ["null span (disabled)", f"{span_ns:.1f} ns/span"],
        ["explore, tracing off", f"{disabled_s * 1e3:.1f} ms"],
        ["explore, tracing on", f"{enabled_s * 1e3:.1f} ms"],
        ["worst-case guard events", str(worst_case_guards)],
        ["worst-case disabled overhead", f"{overhead:.2%}"],
    ]
    record(
        "obs_overhead",
        "Observability overhead (repro.obs)",
        [
            f"TSP implementation level, {result.states_visited} "
            f"states / {result.transitions_taken} transitions; "
            f"best of {ROUNDS} rounds.",
            "",
            *fmt_table(["measurement", "value"], rows),
        ],
        data={
            "guard_ns": guard_ns,
            "null_span_ns": span_ns,
            "explore_disabled_seconds": disabled_s,
            "explore_enabled_seconds": enabled_s,
            "worst_case_guards": worst_case_guards,
            "worst_case_disabled_overhead": overhead,
            "bound": MAX_DISABLED_OVERHEAD,
        },
    )

    assert overhead < MAX_DISABLED_OVERHEAD, (
        f"disabled-mode worst-case overhead {overhead:.2%} exceeds "
        f"{MAX_DISABLED_OVERHEAD:.0%}"
    )


if __name__ == "__main__":
    import pathlib
    import sys
    import tempfile

    sys.path.insert(0, str(pathlib.Path(__file__).parent))
    with tempfile.TemporaryDirectory() as scratch:
        test_disabled_observability_is_under_5_percent(
            pathlib.Path(scratch)
        )
    print("ok — see benchmarks/results/obs_overhead.md")
