"""Verification farm speedup: cold vs warm-cache vs parallel discharge.

The paper's toolchain leans on Dafny/Z3 to discharge verification
conditions in parallel and to skip re-verifying unchanged modules.  The
``repro.farm`` subsystem reproduces both levers; this benchmark measures
what they buy on the four Table 1 case-study chains:

* **cold** — sequential discharge into an empty proof cache;
* **warm** — an identical re-run against the populated cache
  (incremental verification: every lemma obligation should be a hit);
* **parallel** — threaded discharge (4 workers), no cache.

Results land in ``benchmarks/results/farm_speedup.{md,json}``.
"""

from __future__ import annotations

import time

from _common import fmt_table, record
from repro.casestudies import TABLE1, run_case_study
from repro.farm import FarmConfig, VerificationFarm

WORKERS = 4


def _timed_run(study, farm):
    started = time.perf_counter()
    report = run_case_study(study, farm=farm)
    elapsed = time.perf_counter() - started
    assert report.verified, [
        row for row in report.rows() if not row["verified"]
    ]
    return report, elapsed


def test_farm_speedup(tmp_path):
    rows = []
    data = {}
    for name in sorted(TABLE1):
        study = TABLE1[name]()
        cache_dir = tmp_path / f"{name}-cache"

        cold_farm = VerificationFarm(FarmConfig(cache_dir=cache_dir))
        _, cold_s = _timed_run(study, cold_farm)

        warm_farm = VerificationFarm(FarmConfig(cache_dir=cache_dir))
        _, warm_s = _timed_run(study, warm_farm)

        par_farm = VerificationFarm(FarmConfig(jobs=WORKERS))
        _, par_s = _timed_run(study, par_farm)

        warm = warm_farm.summary()
        if warm.jobs:
            # Incrementality: the warm run re-executes at most the
            # uncacheable whole-program checks.
            assert warm.cache_hits + warm.executed == warm.jobs
        rows.append(
            [
                name,
                warm.jobs,
                f"{cold_s:.2f}s",
                f"{warm_s:.2f}s",
                f"{par_s:.2f}s",
                f"{cold_s / warm_s:.1f}x" if warm_s else "-",
                f"{warm.hit_rate:.0%}",
            ]
        )
        data[name] = {
            "obligations": warm.jobs,
            "cold_seconds": cold_s,
            "warm_seconds": warm_s,
            "parallel_seconds": par_s,
            "warm_cache_hits": warm.cache_hits,
            "warm_hit_rate": warm.hit_rate,
            "workers": WORKERS,
        }

    lines = [
        "Cold = sequential, empty cache.  Warm = identical re-run on "
        "the populated cache.",
        f"Parallel = {WORKERS} threaded workers, no cache.",
        "",
    ]
    lines += fmt_table(
        ["study", "obligations", "cold", "warm", f"parallel "
         f"(x{WORKERS})", "warm speedup", "warm hit rate"],
        rows,
    )
    record(
        "farm_speedup",
        "Verification farm: cold vs warm-cache vs parallel",
        lines,
        data,
    )
