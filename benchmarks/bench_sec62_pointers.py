"""§6.2 Pointers: reordering justified by automatic alias analysis.

Paper: "The program is 29 SLOC, the recipe is 7 SLOC, and Armada
generates 2,216 SLOC of proof."  The correctness "depends on our
static alias analysis proving these different pointers do not alias."

The benchmark verifies the study, reports the three SLOC numbers
side-by-side with the paper's, and checks that the proof really rests
on the Steensgaard region lemmas (the aliasing variant must fail).
"""

from __future__ import annotations

from _common import fmt_table, record
from repro.casestudies import pointers, run_case_study
from repro.proofs.engine import verify_source


def test_sec62_pointers(benchmark):
    study = pointers.get()

    def verify():
        report = run_case_study(study)
        assert report.verified
        return report

    report = benchmark.pedantic(verify, rounds=1, iterations=1)
    paper = study.paper_numbers
    row = report.rows()[0]

    # The aliasing variant (q := p) must be rejected by the same recipe.
    aliased = study.source.replace("q := &b;", "q := p;")
    alias_outcome = verify_source(aliased).outcomes[0]

    lines = fmt_table(
        ["metric", "ours", "paper"],
        [
            ["program SLOC", study.implementation_sloc,
             paper["program_sloc"]],
            ["recipe SLOC", row["recipe_sloc"], paper["recipe_sloc"]],
            ["generated SLOC", row["generated_sloc"],
             paper["generated_sloc"]],
        ],
    )
    lines += [
        "",
        f"- PASS: reordered-writes refinement verified "
        f"({row['lemmas']} lemmas)",
        f"- {'PASS' if not alias_outcome.success else 'FAIL'}: the "
        "aliasing variant (q := p) fails with: "
        f"{alias_outcome.error}",
    ]
    assert report.verified
    assert not alias_outcome.success
    assert "alias" in (alias_outcome.error or "")
    record("sec62_pointers", "Sec. 6.2 — Pointers", lines)
