"""§6.3 MCSLock: hand-built lock from hardware primitives.

Paper: 64-SLOC implementation, six transformations; the fifth proves
acquire/release maintain ghost ownership, the last reduces the critical
section to an atomic block.  "In comparison, the authors of CertiKOS
verified an MCS lock ... using 3.2K LOC to prove the safety property."

The benchmark verifies the chain, reports per-transformation effort,
and compares total human-written proof text (recipes + level deltas)
against CertiKOS's 3.2K hand-written lines — the paper's low-effort
claim in its sharpest form.
"""

from __future__ import annotations

from _common import fmt_table, record
from repro.casestudies import mcslock, run_case_study
from repro.casestudies.common import sloc


def test_sec63_mcslock(benchmark):
    study = mcslock.get()

    def verify():
        report = run_case_study(study)
        assert report.verified
        return report

    report = benchmark.pedantic(verify, rounds=1, iterations=1)
    rows = report.rows()

    level_sizes = [sloc(text) for _, text in study.levels]
    deltas = [
        level_sizes[i + 1] - level_sizes[i]
        for i in range(len(level_sizes) - 1)
    ]
    human_effort = report.total_recipe_sloc + sum(max(0, d) for d in deltas)

    table_rows = []
    for row, delta in zip(rows, deltas):
        table_rows.append(
            [row["proof"], row["strategy"], f"{delta:+d}",
             row["recipe_sloc"], row["generated_sloc"], row["lemmas"]]
        )
    lines = fmt_table(
        ["transformation", "strategy", "level delta SLOC", "recipe SLOC",
         "generated SLOC", "lemmas"],
        table_rows,
    )
    certikos = study.paper_numbers["certikos_proof_loc"]
    lines += [
        "",
        f"Implementation: {study.implementation_sloc} SLOC (paper: "
        f"{study.paper_numbers['implementation_sloc']}).",
        f"Total human-written proof material (recipes + level edits): "
        f"{human_effort} SLOC.",
        f"CertiKOS proved the same lock with {certikos} LOC of manual "
        f"proof — {certikos / max(1, human_effort):.0f}x more effort.",
        "",
        "Shape checks:",
    ]
    checks = {
        "all transformations verified": report.verified,
        "reduction is the final transformation":
            rows[-1]["strategy"] == "reduction",
        "human effort well below CertiKOS's 3.2K LOC":
            human_effort < certikos // 4,
        "the reduction proof generates commutativity lemmas":
            rows[-1]["lemmas"] > 3,
    }
    for claim, ok in checks.items():
        lines.append(f"- {'PASS' if ok else 'FAIL'}: {claim}")
        assert ok, claim
    record("sec63_mcslock", "Sec. 6.3 — MCSLock", lines)
