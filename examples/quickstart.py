#!/usr/bin/env python3
"""Quickstart: the paper's running example (§2) end to end.

Verifies the two-recipe refinement chain of the traveling-salesman
search — Implementation → ArbitraryGuard (nondeterministic weakening,
Figures 3–4) → BestLenSequential (TSO elimination, Figures 5–6) —
then executes the implementation on the reference runtime and emits
ClightTSO-flavoured C for it.

Run:  python examples/quickstart.py
"""

from repro.casestudies import tsp
from repro.casestudies.common import run_case_study
from repro.compiler.cbackend import compile_to_c
from repro.lang.frontend import check_level
from repro.machine.translator import translate_level
from repro.runtime.interpreter import run_level


def main() -> None:
    study = tsp.get()
    print("=== Verifying the running example (sec. 2) ===")
    report = run_case_study(study)
    for row in report.rows():
        status = "verified" if row["verified"] else "FAILED"
        print(
            f"  {row['proof']} [{row['strategy']}]: {status} — "
            f"{row['recipe_sloc']}-SLOC recipe generated "
            f"{row['generated_sloc']} SLOC of proof ({row['lemmas']} "
            "lemmas)"
        )
    assert report.verified

    print("\n=== A generated lemma (nondeterministic weakening) ===")
    script = report.outcome.outcomes[0].script
    lemma = next(l for l in script.lemmas if "witness" in "".join(l.body))
    print(lemma.render())

    print("\n=== Running the implementation (reference runtime) ===")
    machine = translate_level(check_level(study.levels[0][1]))
    for seed in (None, 1, 2):
        result = run_level(machine, seed=seed)
        label = "round-robin" if seed is None else f"random seed {seed}"
        print(f"  {label}: log={list(result.log)} "
              f"({result.steps_taken} steps, {result.termination_kind})")

    print("\n=== Compiling the implementation to ClightTSO C ===")
    c_code = compile_to_c(check_level(study.levels[0][1]))
    head = "\n".join(c_code.splitlines()[:6])
    print(head)
    print(f"  ... ({len(c_code.splitlines())} lines total)")


if __name__ == "__main__":
    main()
