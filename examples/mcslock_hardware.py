#!/usr/bin/env python3
"""MCS lock from hardware primitives (§6.3).

Verifies the Mellor-Crummey–Scott queue lock built from atomic
exchange, compare-and-swap, and fences, then exercises it under
adversarial schedules and shows the reduced (atomic) critical section
the final level exposes.

Run:  python examples/mcslock_hardware.py
"""

from repro.casestudies import mcslock
from repro.casestudies.common import run_case_study
from repro.lang.frontend import check_level
from repro.machine.translator import translate_level
from repro.proofs.render import describe_step_effect
from repro.runtime.interpreter import run_level


def main() -> None:
    study = mcslock.get()
    print("=== Verifying the MCS lock (sec. 6.3) ===")
    report = run_case_study(study)
    for row in report.rows():
        status = "verified" if row["verified"] else "FAILED"
        print(f"  {row['proof']} [{row['strategy']}]: {status} — "
              f"{row['lemmas']} lemmas, {row['generated_sloc']} SLOC")
    assert report.verified

    print("\n=== Mover classification in the reduction proof ===")
    reduction = report.outcome.outcomes[-1].script
    for lemma in reduction.lemmas:
        if lemma.name.startswith("PhaseDiscipline"):
            print(f"  {lemma.name}: "
                  f"{lemma.verdict.status if lemma.verdict else '?'}")
            for line in lemma.body:
                if "classification" in line:
                    print(f"    {line.strip('/ ')}")

    print("\n=== Racing two threads through the lock ===")
    machine = translate_level(check_level(study.levels[0][1]))
    for seed in (None, 0, 1, 2, 3):
        result = run_level(machine, seed=seed, max_steps=3_000_000)
        label = "round-robin" if seed is None else f"seed {seed}"
        print(f"  {label}: counter={list(result.log)} "
              f"({result.steps_taken} steps)")
        assert result.log == (2,), "mutual exclusion violated!"
    print("  both increments always observed: mutual exclusion holds")

    print("\n=== The atomic critical section at the top level ===")
    top = translate_level(check_level(study.levels[-1][1]))
    atomic_pcs = [
        pc for pc, info in top.pcs.items() if not info.yieldable
    ]
    for pc in sorted(atomic_pcs):
        for step in top.steps_at(pc):
            print(f"  [atomic] {pc}: {describe_step_effect(step)}")


if __name__ == "__main__":
    main()
