#!/usr/bin/env python3
"""Sound semantic extensibility (§4): registering a new strategy.

"Verification experts can extend the framework with new strategies and
library lemmas.  Developers can leverage these new strategies via
recipes.  Armada ensures sound extensibility because for a proof to be
considered valid, all its lemmas ... must be verified."

This example adds a *statement-swap* strategy for adjacent updates of
distinct scalar globals — a miniature reordering rule.  The strategy
emits lemmas whose obligations the engine still checks mechanically,
so a bogus use (swapping accesses to the *same* variable) fails exactly
like any other bad proof.

Run:  python examples/custom_strategy.py
"""

from repro.errors import StrategyError
from repro.lang import asts as ast
from repro.proofs.artifacts import Lemma, ProofScript, bool_verdict
from repro.proofs.engine import verify_source
from repro.strategies.base import ProofRequest, Strategy
from repro.strategies.registry import register
from repro.strategies.subsumption import steps_identical


@register
class ScalarSwapStrategy(Strategy):
    """Adjacent assignments to distinct scalar globals commute."""

    name = "scalar_swap"

    def generate(self, request: ProofRequest) -> ProofScript:
        script = ProofScript(
            proof_name=request.proof.name,
            strategy=self.name,
            low_level=request.proof.low_level,
            high_level=request.proof.high_level,
        )
        swapped = 0
        for method in self.common_methods(request):
            low = self.ordered_steps(request.low_machine, method)
            high = self.ordered_steps(request.high_machine, method)
            if len(low) != len(high):
                raise StrategyError("scalar_swap: step counts differ")
            i = 0
            while i < len(low):
                if steps_identical(low[i], high[i]):
                    i += 1
                    continue
                if i + 1 >= len(low) or not (
                    steps_identical(low[i], high[i + 1])
                    and steps_identical(low[i + 1], high[i])
                ):
                    raise StrategyError(
                        "scalar_swap: mismatch is not a transposition"
                    )
                first, second = low[i], low[i + 1]
                names = self._scalar_targets(first, second)
                script.add(
                    Lemma(
                        name=f"Swap_{method}_{i}",
                        statement=(
                            f"updates of {names} commute when the "
                            "variables are distinct and neither reads "
                            "the other"
                        ),
                        body=["// independent scalar updates commute"],
                        obligation=self._obligation(first, second),
                    )
                )
                swapped += 1
                i += 2
        if not swapped:
            raise StrategyError("scalar_swap: nothing was swapped")
        return script

    @staticmethod
    def _scalar_targets(first, second):
        names = []
        for step in (first, second):
            for lhs in step.lhss:
                names.append(lhs.name if isinstance(lhs, ast.Var) else "?")
        return names

    @staticmethod
    def _obligation(first, second):
        from repro.lang.astutil import free_vars

        def check():
            targets = set()
            for step in (first, second):
                for lhs in step.lhss:
                    if not isinstance(lhs, ast.Var):
                        return bool_verdict(False, "non-scalar target")
                    targets.add(lhs.name)
            if len(targets) != 2:
                return bool_verdict(False, "targets must be distinct")
            reads = set()
            for step in (first, second):
                for rhs in step.rhss:
                    reads |= free_vars(rhs)
            if reads & targets:
                return bool_verdict(
                    False, f"read/write overlap: {sorted(reads & targets)}"
                )
            return bool_verdict(True)

        return check


GOOD = """
level Low {
  var a: uint32 := 0;
  var b: uint32 := 0;
  void main() {
    a := 1;
    b := 2;
    print_uint32(a);
  }
}
level High {
  var a: uint32 := 0;
  var b: uint32 := 0;
  void main() {
    b := 2;
    a := 1;
    print_uint32(a);
  }
}
proof Swap { refinement Low High scalar_swap }
"""

BAD = """
level Low {
  var a: uint32 := 0;
  var b: uint32 := 0;
  void main() {
    a := 1;
    b := a;
    print_uint32(b);
  }
}
level High {
  var a: uint32 := 0;
  var b: uint32 := 0;
  void main() {
    b := a;
    a := 1;
    print_uint32(b);
  }
}
proof Swap { refinement Low High scalar_swap }
"""


def main() -> None:
    print("=== Using the freshly registered scalar_swap strategy ===")
    good = verify_source(GOOD).outcomes[0]
    print(f"  independent updates: "
          f"{'verified' if good.success else 'FAILED'}")
    assert good.success

    print("\n=== Soundness: a bogus swap is rejected ===")
    bad = verify_source(BAD).outcomes[0]
    print(f"  dependent updates: "
          f"{'verified (BUG!)' if bad.success else 'rejected, as it must'}")
    print(f"  diagnostic: {bad.error}")
    assert not bad.success


if __name__ == "__main__":
    main()
