#!/usr/bin/env python3
"""The lock-free queue, verified and raced (§6.4 / Figure 12).

1. Verifies the eight-level refinement chain from the liblfds-style
   SPSC ring down to the abstract sequence specification.
2. Executes the implementation under adversarial random schedules on
   the TSO-faithful reference runtime (FIFO order must survive).
3. Runs a small Figure 12-style throughput comparison: the native
   liblfds port (bitmask and modulo) against the verified Armada port
   compiled by the aggressive ("GCC") and conservative ("CompCertTSO")
   back ends.

Run:  python examples/lockfree_queue.py
"""

from repro.casestudies import queue
from repro.casestudies.common import run_case_study
from repro.lang.frontend import check_level
from repro.lfds import (
    BoundedSPSCQueue,
    BoundedSPSCQueueModulo,
    single_thread_throughput,
)
from repro.lfds.armada_port import throughput
from repro.machine.translator import translate_level
from repro.runtime.interpreter import run_level


def main() -> None:
    study = queue.get()
    print("=== Verifying the queue refinement chain (sec. 6.4) ===")
    report = run_case_study(study)
    for row in report.rows():
        status = "verified" if row["verified"] else "FAILED"
        print(f"  {row['proof']} [{row['strategy']}]: {status}")
    assert report.verified
    print(
        f"  implementation: {study.implementation_sloc} SLOC; recipes: "
        f"{report.total_recipe_sloc} SLOC; generated proofs: "
        f"{report.total_generated_sloc} SLOC"
    )

    print("\n=== Racing the implementation on the TSO runtime ===")
    machine = translate_level(check_level(study.levels[0][1]))
    for seed in range(4):
        result = run_level(machine, seed=seed, max_steps=3_000_000)
        print(f"  random seed {seed}: log={list(result.log)}")
        assert result.log == (1, 2, 2), "FIFO order violated!"
    print("  FIFO order preserved under every schedule")

    print("\n=== Throughput (small Figure 12 sample) ===")
    operations = 40_000
    rows = [
        ("liblfds (bitmask)",
         single_thread_throughput(BoundedSPSCQueue, 512,
                                  operations).ops_per_second),
        ("liblfds-modulo",
         single_thread_throughput(BoundedSPSCQueueModulo, 512,
                                  operations).ops_per_second),
        ("Armada (aggressive backend)",
         throughput("sc", operations).ops_per_second),
        ("Armada (conservative backend)",
         throughput("conservative", operations).ops_per_second),
    ]
    for name, ops in rows:
        print(f"  {name:32s} {ops / 1e6:6.2f} Mops/s")
    print("  (run benchmarks/bench_fig12_queue_throughput.py for the "
          "noise-controlled version)")


if __name__ == "__main__":
    main()
