#!/usr/bin/env python3
"""The TSO barrier (§6.1): weak memory made visible, then tamed.

1. Demonstrates x86-TSO weakness on the classic store-buffering litmus
   test (both threads can read stale 0s).
2. Verifies the Schirmer–Cohen barrier — a program ownership-based
   methodologies cannot handle, because its flag publications race by
   design.
3. Shows the failure mode: a *broken* barrier (one thread skips the
   wait loop) makes the rely-guarantee proof fail with a diagnostic
   locating the unprovable enabling condition.

Run:  python examples/barrier_tso.py
"""

from repro.casestudies import barrier
from repro.casestudies.common import run_case_study
from repro.explore.explorer import final_logs
from repro.lang.frontend import check_level
from repro.machine.translator import translate_level
from repro.proofs.engine import verify_source

SB_LITMUS = """
level SB {
  var x: uint32 := 0;
  var y: uint32 := 0;
  var r1: uint32 := 0;
  var r2: uint32 := 0;
  void t1() {
    x := 1;
    r1 := y;
  }
  void main() {
    var a: uint64 := 0;
    a := create_thread t1();
    y := 1;
    r2 := x;
    join a;
    print_uint32(r1);
    print_uint32(r2);
  }
}
"""


def main() -> None:
    print("=== Store-buffering litmus test under x86-TSO ===")
    machine = translate_level(check_level(SB_LITMUS))
    outcomes = sorted(
        log for kind, log in final_logs(machine) if kind == "normal"
    )
    for log in outcomes:
        weak = "  <- impossible under sequential consistency!" \
            if log == (0, 0) else ""
        print(f"  r1={log[0]} r2={log[1]}{weak}")
    assert (0, 0) in outcomes, "the model must exhibit TSO weakness"

    print("\n=== Verifying the Schirmer-Cohen barrier (sec. 6.1) ===")
    report = run_case_study(barrier.get())
    for row in report.rows():
        status = "verified" if row["verified"] else "FAILED"
        print(f"  {row['proof']} [{row['strategy']}]: {status} — "
              f"generated {row['generated_sloc']} SLOC")
    assert report.verified

    print("\n=== A broken barrier fails verification ===")
    study = barrier.get()
    # Remove proc1's wait loop: its post-barrier write may now precede
    # main's pre-barrier write.
    broken_ghost = study.levels[1][1].replace(
        "while flag0 == 0 {\n    }", "", 1
    )
    broken_assume = study.levels[2][1].replace(
        "while flag0 == 0 {\n    }", "", 1
    )
    source = broken_ghost + broken_assume + study.recipes[1][1]
    outcome = verify_source(source)
    result = outcome.outcomes[0]
    print(f"  {result.proof_name}: "
          f"{'verified (BUG!)' if result.success else 'failed, as it must'}")
    print(f"  diagnostic: {result.error}")
    assert not result.success


if __name__ == "__main__":
    main()
