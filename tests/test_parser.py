"""Tests for the Armada parser."""

import pytest

from repro.errors import ParseError
from repro.lang import asts as ast
from repro.lang import types as ty
from repro.lang.parser import parse_expression, parse_program


def parse_stmts(body: str) -> list[ast.Stmt]:
    program = parse_program(
        "level L { void main() { " + body + " } }"
    )
    return program.levels[0].methods[0].body.stmts


class TestLevelStructure:
    def test_empty_level(self):
        program = parse_program("level L { }")
        assert program.levels[0].name == "L"

    def test_global_variable_with_init(self):
        program = parse_program(
            "level L { var best_len: uint32 := 0xFFFFFFFF; }"
        )
        g = program.levels[0].globals[0]
        assert g.name == "best_len"
        assert g.var_type == ty.UINT32
        assert isinstance(g.init, ast.IntLit)

    def test_ghost_global(self):
        program = parse_program(
            "level L { ghost var lockholder: option<uint64>; }"
        )
        g = program.levels[0].globals[0]
        assert g.ghost
        assert isinstance(g.var_type, ty.OptionType)

    def test_struct_declaration(self):
        program = parse_program(
            "level L { struct S { var a: uint32; var b: uint64[4]; } }"
        )
        s = program.levels[0].structs[0].struct_type
        assert s.field_type("a") == ty.UINT32
        assert isinstance(s.field_type("b"), ty.ArrayType)

    def test_method_c_style(self):
        program = parse_program("level L { void main() { } }")
        m = program.levels[0].methods[0]
        assert m.name == "main"
        assert isinstance(m.return_type, ty.VoidType)

    def test_method_with_return_type(self):
        program = parse_program("level L { uint32 get(i: uint32) { } }")
        m = program.levels[0].methods[0]
        assert m.return_type == ty.UINT32
        assert m.params[0].name == "i"

    def test_extern_method(self):
        program = parse_program(
            "level L { method {:extern} f(n: uint32) modifies g; }"
        )
        m = program.levels[0].methods[0]
        assert m.is_extern
        assert m.body is None
        assert len(m.spec.modifies) == 1

    def test_duplicate_level_names_allowed_by_parser(self):
        program = parse_program("level L { } level L { }")
        assert len(program.levels) == 2


class TestProofRecipes:
    def test_weakening_recipe(self):
        program = parse_program(
            "proof P { refinement A B weakening }"
        )
        proof = program.proofs[0]
        assert (proof.low_level, proof.high_level) == ("A", "B")
        assert proof.strategy.name == "weakening"

    def test_tso_elim_recipe_with_predicate(self):
        program = parse_program(
            'proof P { refinement A B '
            'tso_elim best_len "mutex == $me" }'
        )
        strategy = program.proofs[0].strategy
        assert strategy.name == "tso_elim"
        assert strategy.args == ["best_len", "mutex == $me"]

    def test_use_regions_directive(self):
        program = parse_program(
            "proof P { refinement A B weakening use_regions }"
        )
        assert program.proofs[0].has_directive("use_regions")
        assert program.proofs[0].strategy.name == "weakening"

    def test_multiple_invariant_items(self):
        program = parse_program(
            'proof P { refinement A B assume_intro '
            'invariant "x >= 0" invariant "y >= 0" }'
        )
        assert len(program.proofs[0].directives("invariant")) == 2


class TestStatements:
    def test_assignment(self):
        (stmt,) = parse_stmts("x := 1;")
        assert isinstance(stmt, ast.AssignStmt)
        assert not stmt.tso_bypass

    def test_tso_bypassing_assignment(self):
        (stmt,) = parse_stmts("x ::= 1;")
        assert stmt.tso_bypass

    def test_multi_assignment(self):
        (stmt,) = parse_stmts("x, y := 1, 2;")
        assert len(stmt.lhss) == 2
        assert len(stmt.rhss) == 2

    def test_bare_call_statement(self):
        (stmt,) = parse_stmts("f(1, 2);")
        assert isinstance(stmt, ast.AssignStmt)
        assert stmt.lhss == []
        assert isinstance(stmt.rhss[0], ast.CallRhs)

    def test_var_decl_with_init(self):
        (stmt,) = parse_stmts("var i: int32 := 0;")
        assert isinstance(stmt, ast.VarDeclStmt)
        assert stmt.var_type == ty.INT32

    def test_multi_var_decl(self):
        (stmt,) = parse_stmts("var i: int32 := 0, s: uint64;")
        assert isinstance(stmt, ast.Block)
        assert len(stmt.stmts) == 2

    def test_if_else(self):
        (stmt,) = parse_stmts("if x < y { a := 1; } else { a := 2; }")
        assert isinstance(stmt, ast.IfStmt)
        assert stmt.els is not None

    def test_if_nondet_guard(self):
        (stmt,) = parse_stmts("if (*) { a := 1; }")
        assert isinstance(stmt.cond, ast.Nondet)

    def test_while_with_invariant(self):
        (stmt,) = parse_stmts(
            "while i < 100 invariant i >= 0 { i := i + 1; }"
        )
        assert isinstance(stmt, ast.WhileStmt)
        assert len(stmt.invariants) == 1

    def test_create_thread(self):
        (stmt,) = parse_stmts("a[i] := create_thread worker();")
        assert isinstance(stmt.rhss[0], ast.CreateThreadRhs)

    def test_join(self):
        (stmt,) = parse_stmts("join a[i];")
        assert isinstance(stmt, ast.JoinStmt)

    def test_malloc_and_dealloc(self):
        stmts = parse_stmts("p := malloc(uint32); dealloc p;")
        assert isinstance(stmts[0].rhss[0], ast.MallocRhs)
        assert isinstance(stmts[1], ast.DeallocStmt)

    def test_calloc(self):
        (stmt,) = parse_stmts("p := calloc(uint32, 10);")
        rhs = stmt.rhss[0]
        assert isinstance(rhs, ast.CallocRhs)
        assert rhs.alloc_type == ty.UINT32

    def test_somehow(self):
        (stmt,) = parse_stmts(
            "somehow requires x > 0 modifies s ensures valid(s);"
        )
        assert isinstance(stmt, ast.SomehowStmt)
        assert len(stmt.spec.requires) == 1
        assert len(stmt.spec.modifies) == 1
        assert len(stmt.spec.ensures) == 1

    def test_explicit_yield_and_yield(self):
        (stmt,) = parse_stmts(
            "explicit_yield { lock(&m); yield; unlock(&m); }"
        )
        assert isinstance(stmt, ast.ExplicitYieldBlock)
        kinds = [type(s).__name__ for s in stmt.body.stmts]
        assert "YieldStmt" in kinds

    def test_atomic_block(self):
        (stmt,) = parse_stmts("atomic { x := 1; y := 2; }")
        assert isinstance(stmt, ast.AtomicBlock)

    def test_assume(self):
        (stmt,) = parse_stmts("assume t >= ghost_best;")
        assert isinstance(stmt, ast.AssumeStmt)

    def test_label(self):
        (stmt,) = parse_stmts("label acq: lock(&m);")
        assert isinstance(stmt, ast.LabelStmt)
        assert stmt.label == "acq"

    def test_break_continue(self):
        stmts = parse_stmts("while true { break; continue; }")
        body = stmts[0].body.stmts
        assert isinstance(body[0], ast.BreakStmt)
        assert isinstance(body[1], ast.ContinueStmt)


class TestExpressions:
    def test_precedence_arith(self):
        expr = parse_expression("1 + 2 * 3")
        assert isinstance(expr, ast.Binary)
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_precedence_logic(self):
        expr = parse_expression("a && b || c")
        assert expr.op == "||"

    def test_implication_binds_loosest(self):
        expr = parse_expression("a && b ==> c")
        assert expr.op == "==>"

    def test_address_of_field(self):
        expr = parse_expression("&s.next")
        assert isinstance(expr, ast.AddressOf)
        assert isinstance(expr.operand, ast.FieldAccess)

    def test_deref(self):
        expr = parse_expression("*p + 1")
        assert expr.op == "+"
        assert isinstance(expr.left, ast.Deref)

    def test_nondet_vs_multiplication(self):
        expr = parse_expression("a * b")
        assert expr.op == "*"
        assert isinstance(expr.left, ast.Var)

    def test_old(self):
        expr = parse_expression("log == old(log) + [n]")
        assert isinstance(expr.right.left, ast.Old)

    def test_seq_literal(self):
        expr = parse_expression("[1, 2, 3]")
        assert isinstance(expr, ast.SeqLit)
        assert len(expr.elements) == 3

    def test_indexing_chain(self):
        expr = parse_expression("a[i][j]")
        assert isinstance(expr, ast.Index)
        assert isinstance(expr.base, ast.Index)

    def test_conditional_expression(self):
        expr = parse_expression("if a then 1 else 2")
        assert isinstance(expr, ast.Conditional)

    def test_quantifier(self):
        expr = parse_expression("forall i: int . i >= 0 ==> f(i)")
        assert isinstance(expr, ast.Quantifier)
        assert expr.kind == "forall"

    def test_nested_generics_close(self):
        program = parse_program("level L { ghost var m: map<int, seq<int>>; }")
        t = program.levels[0].globals[0].var_type
        assert isinstance(t, ty.MapType)
        assert isinstance(t.value, ty.SeqType)


class TestParseErrors:
    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_stmts("x := 1")

    def test_garbage_toplevel(self):
        with pytest.raises(ParseError):
            parse_program("banana")

    def test_array_size_must_be_literal(self):
        with pytest.raises(ParseError):
            parse_program("level L { var a: uint32[n]; }")

    def test_trailing_tokens_in_expression(self):
        with pytest.raises(ParseError):
            parse_expression("a b")
