"""Tests for the explicit-state explorer and invariant checking."""

import pytest

from repro.errors import StateBudgetExceeded
from repro.explore.explorer import Explorer, final_logs
from repro.lang.frontend import check_level
from repro.machine.translator import translate_level


def machine_for(source: str):
    return translate_level(check_level("level L { " + source + " }"))


COUNTER = (
    "var x: uint32; var mu: uint64; "
    "void worker() { var t: uint32 := 0; lock(&mu); t := x; "
    "x := t + 1; unlock(&mu); } "
    "void main() { var a: uint64 := 0; var t: uint32 := 0; "
    "initialize_mutex(&mu); a := create_thread worker(); "
    "lock(&mu); t := x; x := t + 1; unlock(&mu); join a; "
    "t := x; print_uint32(t); }"
)


class TestExploration:
    def test_visits_all_states(self):
        machine = machine_for("void main() { print_uint32(1); }")
        result = Explorer(machine).explore()
        assert result.states_visited >= 2
        assert result.final_outcomes == {("normal", (1,))}

    def test_deduplicates_states(self):
        machine = machine_for(
            "void main() { var i: uint32 := 0; "
            "while i < 50 { i := i + 1; } }"
        )
        result = Explorer(machine).explore()
        # Linear in the loop bound, not exponential.
        assert result.states_visited < 200

    def test_counter_outcome_unique(self):
        machine = machine_for(COUNTER)
        result = Explorer(machine).explore()
        assert result.final_outcomes == {("normal", (2,))}
        assert not result.has_ub

    def test_state_budget_reported(self):
        machine = machine_for(COUNTER)
        result = Explorer(machine, max_states=10).explore()
        assert result.hit_state_budget

    def test_state_budget_is_exact_upper_bound(self):
        # max_states caps the number of *distinct* states admitted
        # (the initial state counts), so a clipped exploration visits
        # exactly the budget, never budget + fanout.
        machine = machine_for(COUNTER)
        for budget in (1, 2, 10, 25):
            result = Explorer(machine, max_states=budget).explore()
            assert result.hit_state_budget
            assert result.states_visited == budget

    def test_reachable_states_raises_on_truncation(self):
        machine = machine_for(COUNTER)
        states = []
        with pytest.raises(StateBudgetExceeded) as excinfo:
            for state in Explorer(machine, max_states=10) \
                    .reachable_states():
                states.append(state)
        # The budget's worth of states is yielded before the raise.
        assert len(states) == 10
        assert excinfo.value.max_states == 10

    def test_reachable_states_complete_without_truncation(self):
        machine = machine_for(COUNTER)
        states = list(Explorer(machine).reachable_states())
        assert len(states) == Explorer(machine).explore().states_visited

    def test_walk_returns_false_on_truncation(self):
        machine = machine_for(COUNTER)
        assert Explorer(machine, max_states=10).walk(
            lambda state, transitions: True
        ) is False
        assert Explorer(machine).walk(
            lambda state, transitions: True
        ) is True

    def test_walk_early_stop_returns_false(self):
        machine = machine_for(COUNTER)
        assert Explorer(machine).walk(
            lambda state, transitions: False
        ) is False

    def test_ub_reasons_collected(self):
        machine = machine_for(
            "void main() { var a: uint32 := 1; var b: uint32 := 0; "
            "a := a / b; }"
        )
        result = Explorer(machine).explore()
        assert result.has_ub
        assert any("zero" in reason for reason in result.ub_reasons)

    def test_assert_failures_counted(self):
        machine = machine_for("void main() { assert false; }")
        result = Explorer(machine).explore()
        assert result.assert_failures == 1


class TestInvariants:
    def test_invariant_holds(self):
        machine = machine_for(COUNTER)

        def x_bounded(state):
            from repro.machine.values import Location, Root

            loc = Location(Root("global", "x"))
            return state.memory.get(loc, 0) <= 2

        result = Explorer(machine).explore({"x_bounded": x_bounded})
        assert not result.violations

    def test_invariant_violation_reported(self):
        machine = machine_for(COUNTER)

        def x_never_two(state):
            from repro.machine.values import Location, Root

            loc = Location(Root("global", "x"))
            return state.memory.get(loc, 0) < 2

        result = Explorer(machine).explore({"x_never_two": x_never_two})
        assert result.violations
        assert result.violations[0].invariant_name == "x_never_two"

    def test_crashing_invariant_counts_as_violation(self):
        machine = machine_for("void main() { }")

        def bad(state):
            raise RuntimeError("boom")

        result = Explorer(machine).explore({"bad": bad})
        assert result.violations


def _replay(machine, trace):
    state = machine.initial_state()
    for transition in trace:
        state = machine.next_state(state, transition)
    return state


class TestTraces:
    def test_violation_trace_replays_to_state(self):
        machine = machine_for(COUNTER)

        def x_never_two(state):
            from repro.machine.values import Location, Root

            loc = Location(Root("global", "x"))
            return state.memory.get(loc, 0) < 2

        result = Explorer(machine).explore({"x_never_two": x_never_two})
        assert result.violations
        for violation in result.violations:
            assert violation.trace
            assert _replay(machine, violation.trace) == violation.state

    def test_violation_traces_are_bfs_shortest(self):
        # BFS visits states in non-decreasing depth, so the reported
        # traces are shortest paths and appear in depth order.
        machine = machine_for(COUNTER)

        def x_never_two(state):
            from repro.machine.values import Location, Root

            loc = Location(Root("global", "x"))
            return state.memory.get(loc, 0) < 2

        result = Explorer(machine).explore({"x_never_two": x_never_two})
        lengths = [len(v.trace) for v in result.violations]
        assert lengths == sorted(lengths)

    def test_initial_state_violation_has_empty_trace(self):
        machine = machine_for("void main() { }")
        result = Explorer(machine).explore(
            {"never": lambda state: False}
        )
        assert result.violations
        first = result.violations[0]
        assert first.trace == ()
        assert first.format_trace() == "<initial>"

    def test_ub_traces_replay_to_ub(self):
        from repro.machine.state import TERM_UB

        machine = machine_for(
            "void main() { var a: uint32 := 1; var b: uint32 := 0; "
            "a := a / b; }"
        )
        result = Explorer(machine).explore()
        assert result.ub_traces
        assert len(result.ub_traces) == len(result.ub_reasons)
        for trace in result.ub_traces:
            final = _replay(machine, trace)
            assert final.termination is not None
            assert final.termination.kind == TERM_UB


class TestFinalLogs:
    def test_nondet_produces_multiple_outcomes(self):
        machine = machine_for(
            "void main() { if (*) { print_uint32(1); } else "
            "{ print_uint32(2); } }"
        )
        assert {log for _, log in final_logs(machine)} == {(1,), (2,)}

    def test_deadlock_reported(self):
        machine = machine_for("void main() { assume false; }")
        assert {kind for kind, _ in final_logs(machine)} == {"deadlock"}
