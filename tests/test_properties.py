"""Property-based tests (hypothesis) on core data structures and
invariants."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import types as ty
from repro.lang.frontend import check_program
from repro.lang.lexer import tokenize
from repro.lang.parser import parse_expression
from repro.lang.astutil import expr_equal, expr_to_str
from repro.lfds import BoundedSPSCQueue, BoundedSPSCQueueModulo
from repro.machine.pmap import PMap
from repro.machine.values import GhostMap
from repro.verifier import Prover, interpret, is_undef

INT_TYPES = [ty.UINT8, ty.UINT16, ty.UINT32, ty.UINT64,
             ty.INT8, ty.INT16, ty.INT32, ty.INT64]


class TestIntTypeProperties:
    @given(st.integers(), st.sampled_from(INT_TYPES))
    def test_wrap_lands_in_range(self, value, int_type):
        wrapped = int_type.wrap(value)
        assert int_type.contains(wrapped)

    @given(st.integers(), st.sampled_from(INT_TYPES))
    def test_wrap_idempotent(self, value, int_type):
        assert int_type.wrap(int_type.wrap(value)) == int_type.wrap(value)

    @given(st.integers(), st.integers(), st.sampled_from(INT_TYPES))
    def test_wrap_is_ring_homomorphism(self, a, b, int_type):
        # wrap(a + b) == wrap(wrap(a) + wrap(b)) — two's complement.
        assert int_type.wrap(a + b) == int_type.wrap(
            int_type.wrap(a) + int_type.wrap(b)
        )

    @given(st.integers(), st.sampled_from(INT_TYPES))
    def test_wrap_congruent_mod_2n(self, value, int_type):
        assert (int_type.wrap(value) - value) % (1 << int_type.bits) == 0


class TestPMapProperties:
    keys = st.text(string.ascii_lowercase, min_size=1, max_size=3)

    @given(st.dictionaries(keys, st.integers(), max_size=8),
           keys, st.integers())
    def test_set_then_get(self, base, key, value):
        pm = PMap(base).set(key, value)
        assert pm[key] == value

    @given(st.dictionaries(keys, st.integers(), max_size=8), keys)
    def test_remove_then_absent(self, base, key):
        pm = PMap(base).remove(key)
        assert key not in pm

    @given(st.dictionaries(keys, st.integers(), max_size=8))
    def test_hash_consistent_with_eq(self, base):
        a = PMap(base)
        b = PMap(dict(reversed(list(base.items()))))
        assert a == b and hash(a) == hash(b)

    @given(st.dictionaries(keys, st.integers(), max_size=8),
           keys, st.integers())
    def test_original_untouched(self, base, key, value):
        pm = PMap(base)
        pm.set(key, value)
        assert dict(pm.items()) == base

    # ---- the incremental XOR hash accumulator --------------------------
    #
    # PMap.set/set_many/remove derive the child's hash accumulator from
    # the parent's in O(1) *only once the parent's accumulator has been
    # materialised* (first __hash__ call).  These properties drive
    # random operation sequences down the incremental path and require
    # the result to agree, at every step, with a from-scratch rehash of
    # the same entries — the explorer's seen-set correctness rests on
    # exactly this equivalence.

    ops = st.lists(
        st.one_of(
            st.tuples(st.just("set"), keys, st.integers(0, 9)),
            st.tuples(st.just("remove"), keys, st.just(0)),
            st.tuples(st.just("set_many"),
                      st.dictionaries(keys, st.integers(0, 9),
                                      max_size=3),
                      st.just(0)),
        ),
        max_size=12,
    )

    @given(st.dictionaries(keys, st.integers(0, 9), max_size=6), ops)
    def test_incremental_hash_matches_rehash(self, base, operations):
        pm = PMap(base)
        hash(pm)  # materialise the accumulator: all updates below are
        model = dict(base)  # derived incrementally, never recomputed
        for op, arg, value in operations:
            if op == "set":
                pm = pm.set(arg, value)
                model[arg] = value
            elif op == "remove":
                pm = pm.remove(arg)
                model.pop(arg, None)
            else:
                pm = pm.set_many(arg)
                model.update(arg)
            fresh = PMap(model)  # accumulator computed from scratch
            assert pm == fresh
            assert hash(pm) == hash(fresh)

    @given(st.dictionaries(keys, st.integers(0, 9), min_size=1,
                           max_size=6),
           st.randoms(use_true_random=False))
    def test_incremental_hash_is_insertion_order_independent(
            self, entries, rng):
        items = list(entries.items())
        shuffled = list(items)
        rng.shuffle(shuffled)
        a = PMap()
        hash(a)
        for key, value in items:
            a = a.set(key, value)
        b = PMap()
        hash(b)
        for key, value in shuffled:
            b = b.set(key, value)
        assert a == b and hash(a) == hash(b)

    @given(st.dictionaries(keys, st.integers(0, 9), max_size=6),
           keys, st.integers(0, 9))
    def test_set_then_remove_restores_hash(self, base, key, value):
        # XOR is its own inverse: adding and removing an entry must
        # return to the parent's exact hash, incrementally.
        pm = PMap(base)
        hash(pm)
        without = pm.remove(key)
        roundtrip = without.set(key, value).remove(key)
        assert roundtrip == without
        assert hash(roundtrip) == hash(without)


class TestGhostMapProperties:
    @given(st.lists(st.tuples(st.integers(), st.integers()), max_size=10))
    def test_matches_dict_model(self, operations):
        ghost = GhostMap()
        model = {}
        for key, value in operations:
            ghost = ghost.set(key, value)
            model[key] = value
        assert dict(ghost.items()) == model


class TestQueueProperties:
    @given(st.lists(st.one_of(
        st.tuples(st.just("enq"), st.integers(0, 1000)),
        st.tuples(st.just("deq"), st.just(0)),
    ), max_size=60))
    def test_both_variants_match_list_model(self, operations):
        for cls in (BoundedSPSCQueue, BoundedSPSCQueueModulo):
            queue = cls(8)
            model = []
            for op, value in operations:
                if op == "enq":
                    ok = queue.try_enqueue(value)
                    assert ok == (len(model) < queue.capacity)
                    if ok:
                        model.append(value)
                else:
                    ok, got = queue.try_dequeue()
                    assert ok == bool(model)
                    if ok:
                        assert got == model.pop(0)
                assert len(queue) == len(model)


class TestProverSoundRefutation:
    """A counterexample returned by the bounded prover must genuinely
    falsify the goal — refutations are sound by construction."""

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 255), st.integers(1, 255))
    def test_random_linear_goals(self, c, d):
        source = (
            "level L { var x: uint32; void main() "
            f"{{ assert (x + {c}) % {d} == 0; }} }}"
        )
        goal = (
            check_program(source).program.levels[0].methods[0]
            .body.stmts[0].cond
        )
        verdict = Prover().prove_valid(goal, {"x": ty.UINT32})
        if verdict.ok:
            assert d == 1  # only trivially-true instances are valid
        else:
            env = dict(verdict.counterexample)
            value = interpret(goal, env)
            assert is_undef(value) or value is False


class TestPrinterParserRoundtrip:
    names = st.sampled_from(["a", "b", "c", "x", "y"])

    @st.composite
    def exprs(draw, depth=3):
        if depth == 0 or draw(st.booleans()):
            kind = draw(st.integers(0, 2))
            if kind == 0:
                return str(draw(st.integers(0, 99)))
            if kind == 1:
                return draw(TestPrinterParserRoundtrip.names)
            return draw(st.sampled_from(["true", "false"]))
        op = draw(st.sampled_from(["+", "-", "*", "<", "==", "&&", "||"]))
        left = draw(TestPrinterParserRoundtrip.exprs(depth=depth - 1))
        right = draw(TestPrinterParserRoundtrip.exprs(depth=depth - 1))
        return f"({left} {op} {right})"

    @settings(max_examples=60, deadline=None)
    @given(exprs())
    def test_print_parse_fixpoint(self, text):
        expr = parse_expression(text)
        printed = expr_to_str(expr)
        reparsed = parse_expression(printed)
        assert expr_equal(expr, reparsed), (text, printed)


class TestLexerProperties:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.sampled_from(
        ["x", "y", "123", "0xFF", ":=", "::=", "==>", "&&", "(", ")",
         "while", "if", "+", "<", "<=", "yield", ";"]
    ), max_size=20))
    def test_token_stream_roundtrip(self, pieces):
        source = " ".join(pieces)
        tokens = tokenize(source)
        assert [t.text for t in tokens[:-1]] == pieces

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 2**64 - 1))
    def test_integer_literals_roundtrip(self, value):
        tokens = tokenize(str(value))
        assert int(tokens[0].text) == value
        tokens_hex = tokenize(hex(value))
        assert int(tokens_hex[0].text, 0) == value
