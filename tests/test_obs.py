"""Tests for repro.obs: spans, counters, shards, aggregation, CLI.

The observer is a process-global singleton, so every test runs under a
fixture that guarantees it is disabled (and its trace file closed)
afterwards, no matter how the test exits.
"""

import json
import os

import pytest

from repro.obs import (
    OBS,
    TRACE_FORMAT,
    TraceError,
    aggregate,
    aggregate_file,
    load_trace,
)


@pytest.fixture(autouse=True)
def observer_reset():
    yield
    OBS.disable()


def read_records(path):
    with open(path, encoding="utf-8") as handle:
        return [json.loads(line) for line in handle if line.strip()]


class TestObserverLifecycle:
    def test_disabled_by_default(self):
        assert not OBS.enabled

    def test_disabled_calls_are_noops(self):
        # No trace file, no error: the null span and guarded emitters.
        with OBS.span("anything", "phase", detail=1):
            OBS.count("some.counter", 3)
            OBS.observe("some.histogram", 0.5)

    def test_enable_writes_meta_line(self, tmp_path):
        path = tmp_path / "t.jsonl"
        OBS.enable(path)
        OBS.disable()
        records = read_records(path)
        assert records[0] == {"type": "meta", "format": TRACE_FORMAT}

    def test_double_enable_rejected(self, tmp_path):
        OBS.enable(tmp_path / "t.jsonl")
        with pytest.raises(RuntimeError):
            OBS.enable(tmp_path / "other.jsonl")

    def test_disable_idempotent(self, tmp_path):
        OBS.enable(tmp_path / "t.jsonl")
        OBS.disable()
        OBS.disable()

    def test_enable_truncates_previous_trace(self, tmp_path):
        path = tmp_path / "t.jsonl"
        OBS.enable(path)
        with OBS.span("first-run", "phase"):
            pass
        OBS.disable()
        OBS.enable(path)
        OBS.disable()
        names = [r.get("name") for r in read_records(path)]
        assert "first-run" not in names


class TestSpans:
    def test_span_record_shape(self, tmp_path):
        path = tmp_path / "t.jsonl"
        OBS.enable(path)
        with OBS.span("work", "obligation", cached=False):
            pass
        OBS.disable()
        spans = [r for r in read_records(path) if r["type"] == "span"]
        (span,) = spans
        assert span["name"] == "work"
        assert span["kind"] == "obligation"
        assert span["attrs"] == {"cached": False}
        assert span["parent"] is None
        assert span["seconds"] >= 0

    def test_spans_nest_via_parent_ids(self, tmp_path):
        path = tmp_path / "t.jsonl"
        OBS.enable(path)
        with OBS.span("outer", "chain"):
            with OBS.span("inner", "proof"):
                pass
        OBS.disable()
        spans = {r["name"]: r for r in read_records(path)
                 if r["type"] == "span"}
        # Inner closes (and is emitted) first; its parent is outer's id.
        assert spans["inner"]["parent"] == spans["outer"]["id"]
        assert spans["outer"]["parent"] is None

    def test_counters_attach_to_innermost_span(self, tmp_path):
        path = tmp_path / "t.jsonl"
        OBS.enable(path)
        with OBS.span("outer", "chain"):
            OBS.count("outer.events")
            with OBS.span("inner", "proof"):
                OBS.count("inner.events", 2)
                OBS.count("inner.events", 3)
        OBS.disable()
        spans = {r["name"]: r for r in read_records(path)
                 if r["type"] == "span"}
        assert spans["inner"]["counters"] == {"inner.events": 5}
        assert spans["outer"]["counters"] == {"outer.events": 1}

    def test_counts_outside_spans_are_global(self, tmp_path):
        path = tmp_path / "t.jsonl"
        OBS.enable(path)
        OBS.count("free.counter", 7)
        OBS.observe("free.histogram", 2.0)
        OBS.observe("free.histogram", 4.0)
        OBS.disable()
        (globals_record,) = [
            r for r in read_records(path) if r["type"] == "counters"
        ]
        assert globals_record["counters"] == {"free.counter": 7}
        hist = globals_record["histograms"]["free.histogram"]
        assert hist == {"count": 2, "sum": 6.0, "min": 2.0, "max": 4.0}

    def test_histogram_on_span(self, tmp_path):
        path = tmp_path / "t.jsonl"
        OBS.enable(path)
        with OBS.span("s", "phase"):
            for value in (3.0, 1.0, 2.0):
                OBS.observe("latency", value)
        OBS.disable()
        (span,) = [r for r in read_records(path) if r["type"] == "span"]
        assert span["histograms"]["latency"] == {
            "count": 3, "sum": 6.0, "min": 1.0, "max": 3.0,
        }


class TestShards:
    def test_merge_rekeys_span_ids(self, tmp_path):
        path = tmp_path / "t.jsonl"
        OBS.enable(path)
        with OBS.span("parent-side", "chain"):
            pass
        shard_dir = OBS.shard_dir()
        os.makedirs(shard_dir, exist_ok=True)
        # A shard whose ids collide with the parent's id space.
        with open(os.path.join(shard_dir, "shard-99.jsonl"), "w",
                  encoding="utf-8") as handle:
            handle.write(json.dumps({
                "type": "span", "id": 1, "parent": None,
                "kind": "obligation", "name": "shard-outer",
                "seconds": 0.1, "attrs": {}, "counters": {},
                "histograms": {},
            }) + "\n")
            handle.write(json.dumps({
                "type": "span", "id": 2, "parent": 1,
                "kind": "phase", "name": "shard-inner",
                "seconds": 0.05, "attrs": {}, "counters": {},
                "histograms": {},
            }) + "\n")
        merged = OBS.merge_shards()
        OBS.disable()
        assert merged == 2
        assert not os.path.exists(shard_dir)
        spans = {r["name"]: r for r in read_records(path)
                 if r["type"] == "span"}
        ids = [r["id"] for r in spans.values()]
        assert len(ids) == len(set(ids))  # no collisions after re-key
        assert (spans["shard-inner"]["parent"]
                == spans["shard-outer"]["id"])
        assert spans["shard-outer"]["parent"] is None

    def test_enable_shard_roundtrip(self, tmp_path):
        shard_dir = str(tmp_path / "t.jsonl.shards")
        OBS.enable_shard(shard_dir)
        with OBS.span("worker-ob", "obligation", cached=False):
            pass
        OBS.disable()
        OBS.enable(tmp_path / "t.jsonl")
        assert OBS.merge_shards() == 1
        OBS.disable()
        spans = [r for r in read_records(tmp_path / "t.jsonl")
                 if r["type"] == "span"]
        assert spans[0]["name"] == "worker-ob"


class TestAggregation:
    def test_load_trace_rejects_bad_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "meta"}\nnot json\n')
        with pytest.raises(TraceError):
            load_trace(str(path))

    def test_load_trace_rejects_missing_file(self, tmp_path):
        with pytest.raises(TraceError):
            load_trace(str(tmp_path / "absent.jsonl"))

    def test_aggregate_counts_obligations_and_phases(self):
        records = [
            {"type": "meta", "format": TRACE_FORMAT},
            {"type": "span", "id": 1, "parent": None, "kind": "chain",
             "name": "Impl", "seconds": 1.0, "attrs": {},
             "counters": {}, "histograms": {}},
            {"type": "span", "id": 2, "parent": 1, "kind": "obligation",
             "name": "P:L1", "seconds": 0.25,
             "attrs": {"cached": False},
             "counters": {"prover.calls": 2}, "histograms": {}},
            {"type": "span", "id": 3, "parent": 1, "kind": "obligation",
             "name": "P:L2", "seconds": 0.0, "attrs": {"cached": True},
             "counters": {}, "histograms": {}},
            {"type": "counters", "counters": {"free": 1},
             "histograms": {}},
        ]
        stats = aggregate(records)
        assert stats.format == TRACE_FORMAT
        assert stats.obligation_total == 2
        assert stats.obligation_cached == 1
        assert stats.counters == {"prover.calls": 2, "free": 1}
        phases = {row["phase"]: row for row in stats.phases}
        assert phases["chain"]["spans"] == 1
        assert phases["obligation"]["spans"] == 2
        payload = stats.to_dict()
        assert payload["obligations"]["total"] == 2
        assert payload["obligations"]["cached"] == 1
        assert payload["obligations"]["executed"] == 1
        text = stats.render_text()
        assert "obligations: 2 (1 from cache, 1 executed)" in text


@pytest.fixture()
def program_file(tmp_path, monkeypatch):
    """The repo's running example: its tso_elim proof queues real farm
    obligations (the toy two-level programs discharge everything
    statically and would leave the farm — and the trace — empty)."""
    monkeypatch.setenv("ARMADA_CACHE_DIR", str(tmp_path / "cache"))
    return os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "examples", "running_example.arm",
    )


class TestCliTrace:
    def test_verify_trace_then_stats(self, program_file, tmp_path,
                                     capsys):
        from repro.cli import main

        trace = str(tmp_path / "run.jsonl")
        assert main(["verify", program_file, "--trace", trace]) == 0
        out = capsys.readouterr().out
        assert not OBS.enabled  # the CLI always closes the trace
        # The farm's reported obligation total...
        farm_total = int(
            [line for line in out.splitlines()
             if line.startswith("farm:")][0].split()[1]
        )
        # ...must equal the number of obligation spans in the trace.
        stats = aggregate_file(trace)
        assert stats.obligation_total == farm_total > 0
        assert stats.chain is not None
        assert len(stats.proofs) >= 1

        assert main(["stats", trace]) == 0
        text = capsys.readouterr().out
        assert "per-phase totals:" in text
        assert f"obligations: {farm_total}" in text

        assert main(["stats", trace, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["obligations"]["total"] == farm_total

    def test_cached_obligations_still_traced(self, program_file,
                                             tmp_path, capsys):
        from repro.cli import main

        cold = str(tmp_path / "cold.jsonl")
        warm = str(tmp_path / "warm.jsonl")
        assert main(["verify", program_file, "--trace", cold]) == 0
        assert main(["verify", program_file, "--trace", warm]) == 0
        capsys.readouterr()
        cold_stats = aggregate_file(cold)
        warm_stats = aggregate_file(warm)
        assert warm_stats.obligation_total == cold_stats.obligation_total
        assert cold_stats.obligation_cached == 0
        assert warm_stats.obligation_cached > 0

    def test_trace_with_thread_farm(self, program_file, tmp_path,
                                    capsys):
        from repro.cli import main

        trace = str(tmp_path / "threads.jsonl")
        assert main(["verify", program_file, "--jobs", "2",
                     "--farm-mode", "thread", "--trace", trace]) == 0
        capsys.readouterr()
        assert aggregate_file(trace).obligation_total > 0

    def test_stats_missing_file_exits_1(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["stats", str(tmp_path / "absent.jsonl")]) == 1
        assert "armada stats:" in capsys.readouterr().err

    def test_trace_unwritable_path_exits_1(self, program_file, tmp_path,
                                           capsys):
        from repro.cli import main

        bad = str(tmp_path / "no-such-dir" / "t.jsonl")
        assert main(["verify", program_file, "--trace", bad]) == 1
        assert "cannot write trace" in capsys.readouterr().err
