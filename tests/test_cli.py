"""Tests for the armada CLI."""

import pytest

from repro.cli import main


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    """Point the default proof cache at a per-test directory so CLI
    tests neither share verdicts nor write into the repository."""
    monkeypatch.setenv("ARMADA_CACHE_DIR", str(tmp_path / "proof-cache"))


@pytest.fixture()
def program_file(tmp_path):
    path = tmp_path / "prog.arm"
    path.write_text(
        "level Low { var x: uint32; void main() "
        "{ x := 1; print_uint32(x); } }\n"
        "level High { var x: uint32; void main() "
        "{ x := *; print_uint32(x); } }\n"
        "proof P { refinement Low High nondet_weakening }\n"
    )
    return str(path)


class TestCommands:
    def test_check(self, program_file, capsys):
        assert main(["check", program_file]) == 0
        out = capsys.readouterr().out
        assert "2 level(s)" in out

    def test_verify_success(self, program_file, capsys):
        assert main(["verify", program_file]) == 0
        out = capsys.readouterr().out
        assert "verified" in out
        assert "Low -> High" in out

    def test_verify_failure_exit_code(self, tmp_path, capsys):
        path = tmp_path / "bad.arm"
        path.write_text(
            "level A { var x: uint32; void main() { x := 1; } }\n"
            "level B { var x: uint32; void main() { x := 2; } }\n"
            "proof P { refinement A B weakening }\n"
        )
        assert main(["verify", str(path)]) == 1

    def test_compile_c(self, program_file, capsys):
        assert main(["compile", program_file, "--level", "Low"]) == 0
        assert "#include <stdint.h>" in capsys.readouterr().out

    def test_compile_python(self, program_file, capsys):
        assert main([
            "compile", program_file, "--level", "Low", "--backend", "sc",
        ]) == 0
        assert "def main():" in capsys.readouterr().out

    def test_run(self, program_file, capsys):
        assert main(["run", program_file, "--level", "Low"]) == 0
        assert "log: [1]" in capsys.readouterr().out

    def test_strategies_listing(self, capsys):
        assert main(["strategies"]) == 0
        out = capsys.readouterr().out
        assert "tso_elim" in out and "reduction" in out

    def test_casestudy(self, capsys):
        assert main(["casestudy", "pointers"]) == 0
        out = capsys.readouterr().out
        assert "pointers: verified" in out

    def test_casestudy_unknown_name(self, capsys):
        assert main(["casestudy", "nosuch"]) == 1
        err = capsys.readouterr().err
        assert "unknown case study 'nosuch'" in err
        for name in ("barrier", "mcslock", "pointers", "queue", "tsp"):
            assert name in err

    def test_version(self, capsys):
        assert main(["--version"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("armada ")
        version = out.split()[1]
        assert version[0].isdigit()

    def test_parse_error_reported(self, tmp_path, capsys):
        path = tmp_path / "broken.arm"
        path.write_text("level {")
        assert main(["check", str(path)]) == 2
        assert "error" in capsys.readouterr().err


class TestAnalyzeCommand:
    @pytest.fixture()
    def racy_file(self, tmp_path):
        path = tmp_path / "sb.arm"
        path.write_text(
            "level L { var x: uint32; var y: uint32; "
            "var r1: uint32; var r2: uint32; "
            "void t1() { x := 1; r1 := y; fence(); } "
            "void main() { var a: uint64 := 0; "
            "a := create_thread t1(); "
            "y := 1; r2 := x; join a; fence(); print_uint32(r2); } }\n"
        )
        return str(path)

    def test_analyze_text_report(self, racy_file, capsys):
        assert main(["analyze", racy_file]) == 0
        out = capsys.readouterr().out
        assert "analysis of level L" in out
        assert "RACY" in out
        assert "witness:" in out

    def test_analyze_json(self, racy_file, capsys):
        import json

        assert main(["analyze", racy_file, "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["level"] == "L"
        assert any(
            f["classification"] == "RACY" for f in data["findings"]
        )

    def test_analyze_fail_on_race(self, racy_file):
        assert main(["analyze", racy_file, "--fail-on-race"]) == 1

    def test_analyze_expect_racy_match(self, racy_file):
        assert main(
            ["analyze", racy_file, "--expect-racy", "x,y"]
        ) == 0

    def test_analyze_expect_racy_mismatch(self, racy_file, capsys):
        assert main(["analyze", racy_file, "--expect-racy", "x"]) == 1
        assert "expected RACY" in capsys.readouterr().err

    def test_analyze_casestudy_race_free(self, capsys):
        assert main(
            ["analyze", "--casestudy", "pointers", "--expect-racy", ""]
        ) == 0

    def test_analyze_requires_one_input(self, capsys):
        assert main(["analyze"]) == 1
        assert "FILE or --casestudy" in capsys.readouterr().err

    def test_analyze_unknown_level(self, racy_file, capsys):
        assert main(["analyze", racy_file, "--level", "Nope"]) == 1
        assert "no level named Nope" in capsys.readouterr().err

    def test_verify_analyze_notes(self, capsys):
        from pathlib import Path

        path = str(
            Path(__file__).parent.parent / "examples"
            / "running_example.arm"
        )
        assert main(["verify", path, "--analyze"]) == 0
        out = capsys.readouterr().out
        assert "analysis[" in out
        assert "matches the analyzer's validated suggestion" in out


class TestFileHandling:
    """Unreadable inputs exit 1 with a one-line stderr message."""

    @pytest.mark.parametrize(
        "command", ["check", "verify", "compile", "run"]
    )
    def test_missing_file(self, command, capsys):
        assert main([command, "/nonexistent.arm"]) == 1
        err = capsys.readouterr().err
        assert "cannot read /nonexistent.arm" in err
        assert len(err.strip().splitlines()) == 1
        assert "Traceback" not in err

    def test_directory_argument(self, tmp_path, capsys):
        assert main(["verify", str(tmp_path)]) == 1
        err = capsys.readouterr().err
        assert "cannot read" in err
        assert "Traceback" not in err


class TestVerifyFarmFlags:
    def test_verify_prints_farm_summary(self, program_file, capsys):
        assert main(["verify", program_file]) == 0
        assert "farm:" in capsys.readouterr().out

    def test_verify_jobs_and_report(self, program_file, capsys):
        assert main([
            "verify", program_file, "--jobs", "2", "--farm-report",
        ]) == 0
        out = capsys.readouterr().out
        assert "verification farm [thread x2]" in out
        assert "obligations queued" in out

    @pytest.fixture()
    def obligation_file(self):
        """A program whose lemmas carry real (cacheable) obligations:
        identical levels produce only trivial subsumption plans, so use
        the shipped running example."""
        from pathlib import Path

        return str(
            Path(__file__).parent.parent / "examples"
            / "running_example.arm"
        )

    def test_verify_second_run_hits_cache(self, obligation_file,
                                          capsys):
        assert main(["verify", obligation_file]) == 0
        first = capsys.readouterr().out
        assert " 0 from cache" in first
        assert main(["verify", obligation_file]) == 0
        second = capsys.readouterr().out
        assert " 0 from cache" not in second
        assert "from cache" in second

    def test_verify_no_cache(self, obligation_file, capsys):
        assert main(["verify", obligation_file, "--no-cache"]) == 0
        assert main(["verify", obligation_file, "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert " 0 from cache" in out

    def test_verify_chain_error_surfaced(self, tmp_path, capsys):
        path = tmp_path / "cycle.arm"
        path.write_text(
            "level A { var x: uint32; void main() { x := 1; } }\n"
            "level B { var x: uint32; void main() { x := 1; } }\n"
            "proof P { refinement A B weakening }\n"
            "proof Q { refinement B A weakening }\n"
        )
        main(["verify", str(path)])
        assert "chain error:" in capsys.readouterr().out


class TestShippedArmadaFile:
    def test_running_example_file_verifies(self):
        from pathlib import Path

        path = (
            Path(__file__).parent.parent / "examples"
            / "running_example.arm"
        )
        assert main(["verify", str(path)]) == 0

    def test_running_example_file_runs(self):
        from pathlib import Path

        path = (
            Path(__file__).parent.parent / "examples"
            / "running_example.arm"
        )
        assert main(["run", str(path), "--level", "Implementation"]) == 0
