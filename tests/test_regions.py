"""Tests for Steensgaard region analysis (§4.1.1)."""

from repro.lang.frontend import check_level
from repro.strategies.regions import (
    UnionFind,
    address_invariant_lemmas,
    analyze_regions,
    region_lemmas,
)


def analyze(source: str):
    return analyze_regions(check_level("level L { " + source + " }"))


class TestUnionFind:
    def test_initially_distinct(self):
        uf = UnionFind()
        assert not uf.same("a", "b")

    def test_union(self):
        uf = UnionFind()
        uf.union("a", "b")
        assert uf.same("a", "b")

    def test_transitive(self):
        uf = UnionFind()
        uf.union("a", "b")
        uf.union("b", "c")
        assert uf.same("a", "c")

    def test_path_compression_idempotent(self):
        uf = UnionFind()
        for i in range(20):
            uf.union(i, i + 1)
        root = uf.find(0)
        assert all(uf.find(i) == root for i in range(21))


class TestSteensgaard:
    DISTINCT = (
        "var a: uint32; var b: uint32; void main() { "
        "var p: ptr<uint32> := null; var q: ptr<uint32> := null; "
        "p := &a; q := &b; *p := 1; *q := 2; }"
    )

    def test_distinct_targets_do_not_alias(self):
        analysis = analyze(self.DISTINCT)
        assert not analysis.may_alias("l:main:p", "l:main:q")

    def test_copy_unifies(self):
        analysis = analyze(
            "var a: uint32; void main() { "
            "var p: ptr<uint32> := null; var q: ptr<uint32> := null; "
            "p := &a; q := p; *q := 1; }"
        )
        assert analysis.may_alias("l:main:p", "l:main:q")

    def test_unification_is_symmetric_and_transitive(self):
        analysis = analyze(
            "var a: uint32; void main() { "
            "var p: ptr<uint32> := null; var q: ptr<uint32> := null; "
            "var r: ptr<uint32> := null; p := &a; q := p; r := q; }"
        )
        assert analysis.may_alias("l:main:p", "l:main:r")
        assert analysis.may_alias("l:main:r", "l:main:p")

    def test_shared_target_unifies(self):
        # Steensgaard (not Andersen): p and q both pointing at a merges
        # their points-to sets.
        analysis = analyze(
            "var a: uint32; void main() { "
            "var p: ptr<uint32> := null; var q: ptr<uint32> := null; "
            "p := &a; q := &a; }"
        )
        assert analysis.may_alias("l:main:p", "l:main:q")

    def test_allocation_sites_distinct(self):
        analysis = analyze(
            "void main() { var p: ptr<uint32> := null; "
            "var q: ptr<uint32> := null; "
            "p := malloc(uint32); q := malloc(uint32); }"
        )
        assert not analysis.may_alias("l:main:p", "l:main:q")

    def test_pointer_offset_stays_in_region(self):
        analysis = analyze(
            "var arr: uint32[4]; var b: uint32; void main() { "
            "var p: ptr<uint32> := null; var q: ptr<uint32> := null; "
            "var r: ptr<uint32> := null; "
            "p := &arr[0]; q := p + 1; r := &b; }"
        )
        assert analysis.may_alias("l:main:p", "l:main:q")
        assert not analysis.may_alias("l:main:p", "l:main:r")

    def test_global_pointers(self):
        analysis = analyze(
            "var a: uint32; var gp: ptr<uint32>; "
            "void main() { gp := &a; }"
        )
        assert "g:gp" in {
            loc for locs in analysis.regions().values() for loc in locs
        } or analysis.region_of("g:gp") is not None


class TestLemmaGeneration:
    def test_region_lemmas_include_noalias(self):
        ctx = check_level("level L { " + TestSteensgaard.DISTINCT + " }")
        lemmas = region_lemmas(ctx)
        names = [l.name for l in lemmas]
        assert any(n.startswith("NoAlias_") for n in names)
        assert "RegionAssignment" in names
        assert "RegionInvariantInductive" in names

    def test_noalias_obligations_verify(self):
        ctx = check_level("level L { " + TestSteensgaard.DISTINCT + " }")
        for lemma in region_lemmas(ctx):
            if lemma.obligation is not None:
                assert lemma.obligation().ok, lemma.name

    def test_address_invariant_simpler(self):
        ctx = check_level("level L { " + TestSteensgaard.DISTINCT + " }")
        lemmas = address_invariant_lemmas(ctx)
        assert len(lemmas) == 1
        assert lemmas[0].obligation().ok
