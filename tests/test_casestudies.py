"""Tests for the evaluation case studies (Table 1 + the running
example): every chain verifies, sources stay core-compilable where the
paper requires it, and seeded mutations are caught."""

import pytest

from repro.casestudies import ALL, TABLE1, load, run_case_study, sloc
from repro.casestudies import barrier, mcslock, pointers, queue, tsp
from repro.lang.core_check import check_core
from repro.lang.frontend import check_level
from repro.proofs.engine import verify_source


@pytest.mark.parametrize("name", sorted(ALL))
def test_case_study_verifies(name):
    report = run_case_study(load(name))
    failures = [r for r in report.rows() if not r["verified"]]
    assert report.verified, failures


@pytest.mark.parametrize("name", sorted(ALL))
def test_implementation_level_is_core(name):
    study = load(name)
    ctx = check_level(study.levels[0][1])
    check_core(ctx)  # must not raise: level 0 is compilable (§3.1.1)


@pytest.mark.parametrize("name", sorted(ALL))
def test_chain_is_connected(name):
    study = load(name)
    level_names = [lname for lname, _ in study.levels]
    report = run_case_study(study)
    assert report.outcome.chain == level_names


def test_registry_contents():
    assert set(TABLE1) == {"barrier", "pointers", "mcslock", "queue"}
    assert "tsp" in ALL
    with pytest.raises(KeyError):
        load("nonexistent")


def test_sloc_counter_ignores_comments_and_blanks():
    assert sloc("// comment\n\nx := 1;\n  // more\ny := 2;") == 2


class TestSeededMutations:
    """Each mutation plants a real concurrency bug; the corresponding
    proof must fail (the reproduction's soundness spot-checks)."""

    def test_barrier_without_wait_fails(self):
        study = barrier.get()
        broken = [
            (name, text.replace("while flag0 == 0 {\n    }", "", 1))
            for name, text in study.levels
        ]
        source = "\n".join(t for _, t in broken) + "\n".join(
            t for _, t in study.recipes
        )
        outcome = verify_source(source)
        assert not outcome.success

    def test_tsp_unlocked_update_fails_tso_elim(self):
        study = tsp.get()
        # Order matters: "lock(&mutex);" is a suffix of
        # "unlock(&mutex);", so remove the unlocks first.
        source = study.source.replace("unlock(&mutex);", "").replace(
            "lock(&mutex);", ""
        )
        outcome = verify_source(source)
        assert not outcome.success

    def test_pointers_aliasing_fails(self):
        study = pointers.get()
        source = study.source.replace("q := &b;", "q := p;")
        outcome = verify_source(source)
        assert not outcome.success

    def test_queue_missing_ghost_append_fails(self):
        study = queue.get()
        source = study.source.replace("q := q + [v];", "", 1)
        outcome = verify_source(source)
        assert not outcome.success

    def test_mcslock_wrong_owner_fails(self):
        study = mcslock.get()
        source = study.source.replace(
            "assume owner == $me;", "assume owner != $me;"
        )
        outcome = verify_source(source)
        assert not outcome.success


class TestPaperNumbers:
    def test_effort_amplification(self):
        # The central claim: generated proofs dwarf the recipes.
        for name in TABLE1:
            report = run_case_study(load(name))
            assert report.total_generated_sloc > \
                10 * max(1, report.total_recipe_sloc), name

    def test_queue_final_level_is_small(self):
        study = queue.get()
        final = sloc(study.levels[-1][1])
        assert final <= study.implementation_sloc

    def test_barrier_level1_recipe_tiny(self):
        study = barrier.get()
        assert sloc(study.recipes[0][1]) <= 6
