"""Golden tests for the CLI's machine-readable surfaces.

The ``--json`` outputs of ``armada analyze``, ``armada explore`` and
``armada stats`` are consumed by scripts (CI greps, the benchmark
harness, users' jq pipelines), so their key sets are contracts: a key
disappearing or changing name is a breaking change this file makes
loud.  The exit-code tests pin the CLI's error conventions — 1 for
user errors reported on stderr, 2 for internal ArmadaErrors — which CI
shell steps rely on.
"""

import json
import os

import pytest

from repro.cli import main

EXAMPLE = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "examples", "running_example.arm",
)


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("ARMADA_CACHE_DIR", str(tmp_path / "cache"))


@pytest.fixture()
def toy_file(tmp_path):
    path = tmp_path / "toy.arm"
    path.write_text(
        "level L { var x: uint32; void main() "
        "{ x := 1; print_uint32(x); } }\n"
    )
    return str(path)


class TestJsonSchemas:
    def test_explore_json_schema(self, toy_file, capsys):
        assert main(["explore", toy_file, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert sorted(payload) == [
            "atomic", "hit_state_budget", "level", "memory_model",
            "outcomes", "por", "reductions_disabled", "states",
            "transitions", "ub", "violations",
        ]
        assert payload["atomic"] is None
        assert payload["memory_model"] == "tso"
        assert payload["level"] == "L"
        assert payload["states"] > 0
        assert payload["reductions_disabled"] is None
        for outcome in payload["outcomes"]:
            assert sorted(outcome) == ["kind", "log"]
        assert sorted(payload["por"]) == [
            "ample_states", "dynamic_states", "full_states",
            "sleep_pruned", "symmetry_merged", "transitions_pruned",
        ]

    def test_explore_json_violation_rows(self, toy_file, capsys):
        assert main(["explore", toy_file, "--json",
                     "--invariant", "x == 0"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["violations"]
        for row in payload["violations"]:
            assert sorted(row) == ["invariant", "trace"]
            assert isinstance(row["trace"], list)

    def test_explore_json_por_off_is_null(self, toy_file, capsys):
        assert main(["explore", toy_file, "--json", "--no-por"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["por"] is None

    def test_analyze_json_schema(self, toy_file, capsys):
        assert main(["analyze", toy_file, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        # The report's top-level contract (see analysis.report).
        assert sorted(payload) == ["findings", "level", "stats"]
        for finding in payload["findings"]:
            assert {"classification", "location",
                    "message"} <= set(finding)

    def test_stats_json_schema(self, tmp_path, capsys):
        trace = str(tmp_path / "t.jsonl")
        assert main(["verify", EXAMPLE, "--trace", trace]) == 0
        capsys.readouterr()
        assert main(["stats", trace, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert sorted(payload) == [
            "chain", "counters", "events", "format", "histograms",
            "memory_models", "obligations", "phases", "proofs",
        ]
        assert payload["memory_models"] == ["tso"]
        assert sorted(payload["obligations"]) == [
            "cached", "executed", "rows", "seconds", "total",
        ]
        for row in payload["obligations"]["rows"]:
            assert sorted(row) == [
                "cached", "counters", "label", "seconds",
            ]
        for row in payload["phases"]:
            assert sorted(row) == ["phase", "seconds", "spans"]

    def test_stats_json_is_deterministically_ordered(self, tmp_path,
                                                     capsys):
        trace = str(tmp_path / "t.jsonl")
        assert main(["verify", EXAMPLE, "--trace", trace]) == 0
        capsys.readouterr()
        assert main(["stats", trace, "--json"]) == 0
        first = capsys.readouterr().out
        assert main(["stats", trace, "--json"]) == 0
        second = capsys.readouterr().out
        assert first == second


class TestExitCodes:
    @pytest.mark.parametrize("command", [
        ["check", "/nonexistent/prog.arm"],
        ["verify", "/nonexistent/prog.arm"],
        ["explore", "/nonexistent/prog.arm"],
        ["analyze", "/nonexistent/prog.arm"],
        ["compile", "/nonexistent/prog.arm"],
    ])
    def test_missing_file_exits_1(self, command, capsys):
        assert main(command) == 1
        assert "cannot read" in capsys.readouterr().err

    def test_stats_missing_trace_exits_1(self, capsys):
        assert main(["stats", "/nonexistent/t.jsonl"]) == 1
        assert capsys.readouterr().err

    def test_unknown_casestudy_exits_1(self, capsys):
        assert main(["casestudy", "no-such-study"]) == 1
        err = capsys.readouterr().err
        assert "unknown case study" in err
        assert "valid names:" in err

    def test_analyze_unknown_casestudy_exits_1(self, capsys):
        assert main(["analyze", "--casestudy", "no-such-study"]) == 1
        assert "unknown case study" in capsys.readouterr().err

    def test_analyze_file_and_casestudy_conflict(self, toy_file,
                                                 capsys):
        assert main(["analyze", toy_file,
                     "--casestudy", "tsp"]) == 1
        assert "not both" in capsys.readouterr().err

    def test_explore_unknown_level_exits_1(self, toy_file, capsys):
        assert main(["explore", toy_file, "--level", "Nope"]) == 1
        assert "no level named Nope" in capsys.readouterr().err

    def test_usage_error_is_nonzero(self, capsys):
        assert main(["no-such-subcommand"]) != 0
