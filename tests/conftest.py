"""Shared test configuration.

Point the compiled-stepper source cache (repro.compiler.stepc) at a
per-session temporary directory so test runs are hermetic: they never
read a stale cache from ``~/.cache/armada/stepc`` and never leave one
behind.
"""

import pytest


@pytest.fixture(autouse=True, scope="session")
def _stepc_cache_tmpdir(tmp_path_factory):
    import os

    path = tmp_path_factory.mktemp("stepc-cache")
    previous = os.environ.get("ARMADA_STEPC_CACHE")
    os.environ["ARMADA_STEPC_CACHE"] = str(path)
    yield
    if previous is None:
        os.environ.pop("ARMADA_STEPC_CACHE", None)
    else:
        os.environ["ARMADA_STEPC_CACHE"] = previous
