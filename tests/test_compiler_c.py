"""Tests for the ClightTSO-flavoured C back end (§5)."""

import pytest

from repro.errors import CompileError, CoreViolation
from repro.compiler.cbackend import compile_to_c
from repro.lang.frontend import check_level


def compile_src(source: str) -> str:
    return compile_to_c(check_level("level L { " + source + " }"))


class TestEmission:
    def test_runtime_prelude_present(self):
        code = compile_src("void main() { }")
        assert "#include <stdint.h>" in code
        assert "armada_create_thread" in code

    def test_method_signature(self):
        code = compile_src("uint32 f(a: uint8, b: int64) { return 0; } "
                           "void main() { }")
        assert "uint32_t f(uint8_t a, int64_t b)" in code

    def test_prototypes_before_bodies(self):
        code = compile_src("void helper() { } void main() { helper(); }")
        assert code.index("void helper(void);") < code.index(
            "void helper(void)\n"
        )

    def test_struct_emission(self):
        code = compile_src(
            "struct Node { var next: ptr<Node>; var v: uint64[4]; } "
            "void main() { }"
        )
        assert "struct Node {" in code
        assert "struct Node * next;" in code.replace("*next", "* next")
        assert "uint64_t v[4];" in code

    def test_global_with_initializer(self):
        code = compile_src("var best: uint32 := 255; void main() { }")
        assert "uint32_t best = 255;" in code

    def test_control_flow(self):
        code = compile_src(
            "void main() { var i: uint32 := 0; while i < 3 "
            "{ if i == 1 { break; } i := i + 1; } }"
        )
        assert "while ((i < 3))" in code or "while (i < 3)" in code
        assert "break;" in code

    def test_thread_trampoline(self):
        code = compile_src(
            "void worker(n: uint32) { } "
            "void main() { var t: uint64 := 0; "
            "t := create_thread worker(3); join t; }"
        )
        assert "armada_thread_entry_0" in code
        assert "worker(3)" in code
        assert "armada_join(t);" in code

    def test_malloc_dealloc(self):
        code = compile_src(
            "void main() { var p: ptr<uint32> := null; "
            "p := malloc(uint32); dealloc p; }"
        )
        assert "armada_malloc(sizeof(uint32_t))" in code
        assert "armada_dealloc(p);" in code

    def test_mutex_extern_calls(self):
        code = compile_src(
            "var mu: uint64; void main() { initialize_mutex(&mu); "
            "lock(&mu); unlock(&mu); }"
        )
        assert "lock((&mu));" in code or "lock(&mu);" in code

    def test_pointer_deref_assignment(self):
        code = compile_src(
            "var g: uint32; void main() { var p: ptr<uint32> := null; "
            "p := &g; *p := 5; }"
        )
        assert "(*p) = 5;" in code


class TestRejection:
    def test_non_core_rejected(self):
        with pytest.raises(CoreViolation):
            compile_src("ghost var g: int; void main() { }")

    def test_somehow_rejected(self):
        with pytest.raises(CoreViolation):
            compile_src("var x: uint32; void main() "
                        "{ somehow modifies x; }")
