"""Tests for the Armada type system and value helpers."""

import pytest

from repro.lang import types as ty
from repro.machine import values as val


class TestIntType:
    def test_uint32_range(self):
        assert ty.UINT32.min_value == 0
        assert ty.UINT32.max_value == 0xFFFFFFFF

    def test_int8_range(self):
        assert ty.INT8.min_value == -128
        assert ty.INT8.max_value == 127

    def test_unsigned_wrap(self):
        assert ty.UINT8.wrap(256) == 0
        assert ty.UINT8.wrap(257) == 1
        assert ty.UINT8.wrap(-1) == 255

    def test_signed_wrap_two_complement(self):
        assert ty.INT8.wrap(128) == -128
        assert ty.INT8.wrap(255) == -1
        assert ty.INT8.wrap(-129) == 127

    def test_wrap_identity_in_range(self):
        for value in (0, 1, 127, -128):
            assert ty.INT8.wrap(value) == value

    def test_contains(self):
        assert ty.UINT16.contains(65535)
        assert not ty.UINT16.contains(65536)
        assert not ty.UINT16.contains(-1)

    def test_str(self):
        assert str(ty.UINT64) == "uint64"
        assert str(ty.INT32) == "int32"

    def test_is_core(self):
        assert ty.UINT32.is_core()
        assert not ty.MATHINT.is_core()


class TestCompositeTypes:
    def test_pointer_str(self):
        assert str(ty.PtrType(ty.UINT32)) == "ptr<uint32>"

    def test_array_str(self):
        assert str(ty.ArrayType(ty.UINT8, 4)) == "uint8[4]"

    def test_struct_nominal_equality(self):
        a = ty.StructType("S", (ty.StructField("x", ty.UINT32),))
        b = ty.StructType("S", ())
        assert a == b  # nominal: same name
        assert hash(a) == hash(b)

    def test_struct_field_lookup(self):
        s = ty.StructType(
            "S",
            (ty.StructField("a", ty.UINT8), ty.StructField("b", ty.UINT16)),
        )
        assert s.field_type("b") == ty.UINT16
        assert s.field_index("b") == 1
        assert s.field_type("zzz") is None

    def test_struct_core_depends_on_fields(self):
        core = ty.StructType("A", (ty.StructField("x", ty.UINT8),))
        ghost = ty.StructType("B", (ty.StructField("x", ty.MATHINT),))
        assert core.is_core()
        assert not ghost.is_core()

    def test_ghost_types_not_core(self):
        assert not ty.SeqType(ty.UINT8).is_core()
        assert not ty.MapType(ty.UINT8, ty.UINT8).is_core()
        assert not ty.OptionType(ty.UINT64).is_core()


class TestAssignability:
    def test_same_type(self):
        assert ty.assignable(ty.UINT32, ty.UINT32)

    def test_no_implicit_narrowing(self):
        assert not ty.assignable(ty.UINT8, ty.UINT32)
        assert not ty.assignable(ty.UINT32, ty.UINT8)

    def test_fixed_flows_into_mathint(self):
        assert ty.assignable(ty.MATHINT, ty.UINT64)
        assert ty.assignable(ty.MATHINT, ty.INT8)

    def test_null_pointer_into_any_pointer(self):
        null_type = ty.PtrType(ty.VOID)
        assert ty.assignable(ty.PtrType(ty.UINT32), null_type)

    def test_pointer_types_invariant(self):
        assert not ty.assignable(
            ty.PtrType(ty.UINT32), ty.PtrType(ty.UINT64)
        )

    def test_none_option_into_any_option(self):
        assert ty.assignable(
            ty.OptionType(ty.UINT64), ty.OptionType(ty.VOID)
        )

    def test_join_integer(self):
        assert ty.join_integer(ty.UINT8, ty.UINT8) == ty.UINT8
        assert ty.join_integer(ty.MATHINT, ty.UINT8) == ty.MATHINT
        assert ty.join_integer(ty.UINT8, ty.UINT16) is None
        assert ty.join_integer(ty.BOOL, ty.UINT8) is None


class TestDefaults:
    def test_scalar_defaults(self):
        assert val.default_value(ty.UINT32) == 0
        assert val.default_value(ty.BOOL) is False
        assert val.default_value(ty.PtrType(ty.UINT8)) == val.NULL

    def test_array_default(self):
        d = val.default_value(ty.ArrayType(ty.UINT8, 3))
        assert isinstance(d, val.CompositeValue)
        assert d.children == (0, 0, 0)

    def test_struct_default(self):
        s = ty.StructType(
            "S",
            (ty.StructField("a", ty.UINT8),
             ty.StructField("b", ty.ArrayType(ty.BOOL, 2))),
        )
        d = val.default_value(s)
        assert d.children[0] == 0
        assert d.children[1].children == (False, False)

    def test_ghost_defaults(self):
        assert val.default_value(ty.SeqType(ty.UINT8)) == ()
        assert val.default_value(ty.SetType(ty.UINT8)) == frozenset()
        assert val.default_value(ty.OptionType(ty.UINT8)) == \
            val.NONE_OPTION
        assert len(val.default_value(ty.MapType(ty.UINT8, ty.UINT8))) == 0


class TestLocations:
    def test_leaf_locations_scalar(self):
        root = val.Root("global", "x")
        leaves = val.leaf_locations(root, ty.UINT32)
        assert len(leaves) == 1
        assert leaves[0][0] == val.Location(root)

    def test_leaf_locations_nested(self):
        s = ty.StructType(
            "S",
            (ty.StructField("a", ty.ArrayType(ty.UINT8, 2)),
             ty.StructField("b", ty.UINT16)),
        )
        root = val.Root("alloc", "", 7)
        leaves = val.leaf_locations(root, s)
        paths = [loc.path for loc, _ in leaves]
        assert paths == [(0, 0), (0, 1), (1,)]
        assert leaves[2][1] == ty.UINT16

    def test_type_at_path(self):
        s = ty.StructType(
            "S", (ty.StructField("a", ty.ArrayType(ty.UINT8, 2)),)
        )
        assert val.type_at_path(s, (0, 1)) == ty.UINT8
        assert val.type_at_path(s, (0,)) == ty.ArrayType(ty.UINT8, 2)

    def test_child_type_bounds(self):
        with pytest.raises(IndexError):
            val.child_type(ty.ArrayType(ty.UINT8, 2), 2)
        with pytest.raises(ValueError):
            val.child_type(ty.UINT8, 0)

    def test_location_child_and_str(self):
        root = val.Root("global", "arr")
        loc = val.Location(root).child(3)
        assert loc.path == (3,)
        assert "arr" in str(loc)


class TestGhostValues:
    def test_option(self):
        assert val.some(5).is_some
        assert val.some(5).value == 5
        assert not val.NONE_OPTION.is_some
        assert val.some(5) != val.NONE_OPTION

    def test_ghost_map_immutable_update(self):
        m = val.GhostMap()
        m2 = m.set("k", 1)
        assert "k" not in m
        assert m2["k"] == 1
        assert m2.remove("k") == m

    def test_ghost_map_hash_eq(self):
        a = val.GhostMap({"x": 1})
        b = val.GhostMap().set("x", 1)
        assert a == b
        assert hash(a) == hash(b)

    def test_composite_with_child(self):
        c = val.CompositeValue((1, 2, 3))
        assert c.with_child(1, 9).children == (1, 9, 3)
        assert c.children == (1, 2, 3)  # original untouched
