"""Tests for developer-specified refinement relations (§3.1.3)."""

import pytest

from repro.errors import ProofFailure
from repro.lang.frontend import check_program
from repro.machine.translator import translate_level
from repro.explore.refinement_check import check_refinement
from repro.proofs.engine import verify_source
from repro.proofs.refinement import build_relation

SOURCE = """
level Low {
  var count: uint32;
  void main() { count := 2; print_uint32(count); }
}
level High {
  var count: uint32;
  void main() { count := 3; print_uint32(3); }
}
"""


def contexts():
    checked = check_program(SOURCE)
    return checked, checked.contexts["Low"], checked.contexts["High"]


class TestBuildRelation:
    def test_log_comparison(self):
        checked, low_ctx, high_ctx = contexts()
        relation = build_relation("low_log == high_log", low_ctx,
                                  high_ctx)
        low = translate_level(low_ctx).initial_state()
        high = translate_level(high_ctx).initial_state()
        assert relation(low, high)
        assert not relation(low.append_log(1), high)

    def test_global_comparison(self):
        checked, low_ctx, high_ctx = contexts()
        relation = build_relation(
            "low_count <= high_count", low_ctx, high_ctx
        )
        low = translate_level(low_ctx).initial_state()
        high = translate_level(high_ctx).initial_state()
        assert relation(low, high)  # 0 <= 0

    def test_log_prefix_expressible(self):
        checked, low_ctx, high_ctx = contexts()
        # The paper's example R: "the log in the implementation is a
        # prefix of that in the spec".
        relation = build_relation(
            "low_log == take(high_log, len(low_log))", low_ctx, high_ctx
        )
        low = translate_level(low_ctx).initial_state().append_log(1)
        high = (translate_level(high_ctx).initial_state()
                .append_log(1).append_log(2))
        assert relation(low, high)
        assert not relation(low.append_log(9), high)

    def test_unknown_global_rejected(self):
        checked, low_ctx, high_ctx = contexts()
        with pytest.raises(ProofFailure):
            build_relation("low_zzz == 1", low_ctx, high_ctx)

    def test_unprefixed_variable_rejected(self):
        checked, low_ctx, high_ctx = contexts()
        with pytest.raises(ProofFailure):
            build_relation("count == 1", low_ctx, high_ctx)


class TestEngineIntegration:
    def test_custom_relation_accepts(self):
        # Weaken count := 1 to count := * under R: low_count <= high_count.
        # (1 lies within the bounded validator's havoc domain.)
        source = """
level Low {
  var count: uint32;
  void main() { count := 1; print_uint32(3); }
}
level High {
  var count: uint32;
  void main() { count := *; print_uint32(3); }
}
proof P { refinement Low High nondet_weakening
  relation "low_count <= high_count && low_log == high_log" }
"""
        outcome = verify_source(
            source, validate_refinement="always"
        ).outcomes[0]
        assert outcome.success, outcome.error
        assert outcome.refinement_checked

    def test_custom_relation_rejects_divergent_globals(self):
        # R demands equal counts, but the levels pin different values.
        source = """
level Low {
  var count: uint32;
  void main() { count := 1; print_uint32(9); }
}
level High {
  var count: uint32;
  void main() { count := 0; print_uint32(9); }
}
proof P { refinement Low High nondet_weakening
  relation "low_count == high_count" }
"""
        source = source.replace("count := 0;", "count := *;", 1)
        # high may pick 1 via its havoc domain, so this variant holds:
        outcome = verify_source(
            source, validate_refinement="always"
        ).outcomes[0]
        assert outcome.success, outcome.error

    def test_relation_catches_divergence(self):
        source = """
level Low {
  var count: uint32;
  void main() { count := 2; }
}
level High {
  var count: uint32;
  void main() { count := 3; }
}
proof P { refinement Low High weakening
  relation "low_count == high_count" }
"""
        # Structurally this is not even a weakening (2 vs 3 differ), so
        # the proof fails before R is consulted; use nondet path.
        outcome = verify_source(
            source, validate_refinement="always"
        ).outcomes[0]
        assert not outcome.success
