"""Tests for the verification backend: formula interpreter and the
bounded prover (the Dafny/Z3 substitute)."""

import pytest

from repro.lang import types as ty
from repro.lang.frontend import check_program
from repro.verifier import UNDEF, Prover, ProverConfig, interpret, is_undef


def typed(text: str, decls: str = "var x: uint32; var y: uint32;"):
    """Parse and type a boolean expression against some declarations."""
    program = check_program(
        f"level L {{ {decls} void main() {{ assert {text}; }} }}"
    )
    return program.program.levels[0].methods[0].body.stmts[0].cond


class TestInterpreter:
    def test_arithmetic(self):
        e = typed("x + y == 5")
        assert interpret(e, {"x": 2, "y": 3}) is True
        assert interpret(e, {"x": 2, "y": 4}) is False

    def test_unsigned_wrap(self):
        e = typed("x + 1 == 0")
        assert interpret(e, {"x": 0xFFFFFFFF}) is True

    def test_signed_overflow_is_undef(self):
        e = typed("z + 1 > z", decls="var z: int32;")
        assert is_undef(interpret(e, {"z": 2**31 - 1}))

    def test_division_by_zero_undef(self):
        e = typed("x / y == 1")
        assert is_undef(interpret(e, {"x": 1, "y": 0}))

    def test_c_division_truncates_toward_zero(self):
        e = typed("a / b == 0 - 2", decls="var a: int32; var b: int32;")
        assert interpret(e, {"a": -7, "b": 3}) is True

    def test_modulo_sign(self):
        e = typed("a % b == 0 - 1", decls="var a: int32; var b: int32;")
        assert interpret(e, {"a": -7, "b": 3}) is True

    def test_shift_out_of_range_undef(self):
        e = typed("x << y == 0")
        assert is_undef(interpret(e, {"x": 1, "y": 32}))

    def test_shortcircuit_protects_undef(self):
        e = typed("y != 0 && x / y == 1")
        assert interpret(e, {"x": 3, "y": 0}) is False

    def test_implication_shortcircuit(self):
        e = typed("y != 0 ==> x / y >= 0")
        assert interpret(e, {"x": 3, "y": 0}) is True

    def test_undef_propagates_through_comparison(self):
        e = typed("x / y == x / y")
        assert is_undef(interpret(e, {"x": 1, "y": 0}))

    def test_bitwise(self):
        e = typed("(x & 3) == 1 && (x | 4) >= 4 && (x ^ x) == 0")
        assert interpret(e, {"x": 5}) is True

    def test_conditional_expression(self):
        e = typed("(if x > y then x else y) == 7")
        assert interpret(e, {"x": 7, "y": 3}) is True
        assert interpret(e, {"x": 3, "y": 7}) is True

    def test_sequence_builtins(self):
        e = typed(
            "len(q) == 2 && first(q) == 5 && drop(q, 1) == [6]",
            decls="ghost var q: seq<int>;",
        )
        assert interpret(e, {"q": (5, 6)}) is True

    def test_first_of_empty_undef(self):
        e = typed("first(q) == 0", decls="ghost var q: seq<int>;")
        assert is_undef(interpret(e, {"q": ()}))

    def test_quantifier_forall(self):
        e = typed("forall i: uint8 . i >= 0")
        assert interpret(e, {}) is True

    def test_quantifier_exists(self):
        e = typed("exists i: uint8 . i == 3")
        assert interpret(e, {}) is True

    def test_unknown_variable_raises(self):
        with pytest.raises(KeyError):
            interpret(typed("x == 0"), {})

    def test_old_reads_old_env(self):
        program = check_program(
            "level L { var x: uint32; void main() "
            "{ somehow modifies x ensures x == old(x) + 1; } }"
        )
        post = (
            program.program.levels[0].methods[0].body.stmts[0]
            .spec.ensures[0]
        )
        env = {"x": 6, "$old": {"x": 5}}
        assert interpret(post, env) is True


class TestProver:
    def test_paper_bitvector_example(self):
        # §4.1.2: weakening y := x & 1 to y := x % 2.
        prover = Prover()
        goal = typed("(x & 1) == (x % 2)")
        assert prover.prove_valid(goal, {"x": ty.UINT32}).ok

    def test_refutes_wrong_mask(self):
        prover = Prover()
        goal = typed("(x & 3) == (x % 2)")
        verdict = prover.prove_valid(goal, {"x": ty.UINT32})
        assert not verdict.ok
        assert verdict.counterexample is not None
        # The counterexample must genuinely falsify the goal.
        x = verdict.counterexample["x"]
        assert (x & 3) != (x % 2)

    def test_corner_values_probed(self):
        prover = Prover()
        goal = typed("x < 4294967295")
        verdict = prover.prove_valid(goal, {"x": ty.UINT32})
        assert not verdict.ok
        assert verdict.counterexample["x"] == 0xFFFFFFFF

    def test_assumption_discharges(self):
        prover = Prover()
        goal = typed("x / x == 1")
        assume = typed("x > 0")
        assert not prover.prove_valid(goal, {"x": ty.UINT32}).ok
        assert prover.prove_valid(goal, {"x": ty.UINT32}, [assume]).ok

    def test_undef_goal_refuted(self):
        # Well-definedness: a goal that can be UNDEF where the
        # hypotheses hold is not proved.
        prover = Prover()
        goal = typed("x / y >= 0")
        verdict = prover.prove_valid(goal, {"x": ty.UINT32,
                                            "y": ty.UINT32})
        assert not verdict.ok

    def test_equivalence(self):
        prover = Prover()
        left = typed("(x & 1) == 0").left
        right = typed("(x % 2) == 0").left
        assert prover.equivalent(left, right, {"x": ty.UINT32}).ok

    def test_equivalence_refuted(self):
        prover = Prover()
        left = typed("(x + 1) == 0").left
        right = typed("(x + 2) == 0").left
        assert not prover.equivalent(left, right, {"x": ty.UINT32}).ok

    def test_boolean_exhaustive(self):
        prover = Prover()
        goal = typed("a || !a", decls="var a: bool;")
        verdict = prover.prove_valid(goal, {"a": ty.BOOL})
        assert verdict.ok
        assert verdict.assignments_checked == 2

    def test_mathint_window(self):
        prover = Prover()
        goal = typed("n * n >= 0", decls="ghost var n: int;")
        assert prover.prove_valid(goal, {"n": ty.MATHINT}).ok

    def test_budget_shrinking_terminates(self):
        config = ProverConfig(max_assignments=500)
        prover = Prover(config)
        variables = {f"v{i}": ty.UINT32 for i in range(6)}
        goal = typed(
            " && ".join(f"v{i} >= 0" for i in range(6)),
            decls="".join(f"var v{i}: uint32;" for i in range(6)),
        )
        verdict = prover.prove_valid(goal, variables)
        assert verdict.ok
        assert verdict.assignments_checked <= 501

    def test_no_variables(self):
        prover = Prover()
        goal = typed("1 + 1 == 2")
        assert prover.prove_valid(goal, {}).ok

    def test_option_domain(self):
        prover = Prover()
        goal = typed(
            "o == None || o != None", decls="ghost var o: option<uint64>;"
        )
        assert prover.prove_valid(
            goal, {"o": ty.OptionType(ty.UINT64)}
        ).ok
