"""Compiled step specialization (:mod:`repro.compiler.stepc`).

The compiled ``enabled_and_next`` must be *observationally invisible*:
for every machine it covers, it returns exactly the interpreter's
``[(Transition, successor), ...]`` list — same order, same successor
states (bit-identical hashes), same UB reasons, same verdicts — across
the SC and TSO memory models.  Machines it cannot cover (the RA model,
unsupported step shapes) fall back to the interpreter, silently for
whole machines and inline per step.
"""

import json

import pytest

from repro.casestudies import ALL, load
from repro.compiler.stepc import compile_stepper, stepper_for
from repro.errors import StateBudgetExceeded
from repro.explore.explorer import Explorer
from repro.lang.frontend import check_level, check_program
from repro.machine.translator import translate_level
from repro.memmodel.litmus import CORPUS, run_litmus
from repro.obs import OBS

#: Budget for the case-study equivalence sweeps — deliberately small
#: enough that truncation triggers on the big levels, so the compiled
#: and interpreted paths are also compared *at* the budget edge.
STUDY_CAP = 4_000

#: IRIW's full sweep needs millions of states; the other shapes cover
#: the same codegen paths (atomic ops, create/join, fences) in seconds.
LITMUS = [t.name for t in CORPUS if t.name != "IRIW"]


def machine_for(source: str, model: str = "tso"):
    return translate_level(
        check_level("level L { " + source + " }"), memory_model=model
    )


SMALL = (
    "var x: uint32; var mu: uint64; "
    "void worker() { var t: uint32 := 0; lock(&mu); t := x; "
    "x := t + 1; unlock(&mu); } "
    "void main() { var a: uint64 := 0; var t: uint32 := 0; "
    "initialize_mutex(&mu); a := create_thread worker(); "
    "lock(&mu); t := x; x := t + 1; unlock(&mu); join a; "
    "t := x; print_uint32(t); }"
)


def assert_same_exploration(interp_machine, compiled_machine,
                            max_states=2_000_000):
    """Explore both ways and require bit-identical observations."""
    ri = Explorer(interp_machine, max_states, compiled=False).explore()
    rc = Explorer(compiled_machine, max_states, compiled=True).explore()
    assert rc.final_outcomes == ri.final_outcomes
    assert sorted(rc.ub_reasons) == sorted(ri.ub_reasons)
    assert rc.states_visited == ri.states_visited
    assert rc.transitions_taken == ri.transitions_taken
    assert rc.assert_failures == ri.assert_failures
    assert rc.hit_state_budget == ri.hit_state_budget
    return ri, rc


class TestExactRelation:
    """The compiled function reproduces the interpreter's transition
    list exactly, state by state, in order."""

    @pytest.mark.parametrize("model", ["sc", "tso"])
    def test_pairs_identical_over_reachable_set(self, model):
        machine = machine_for(SMALL, model)
        stepper = stepper_for(machine)
        assert stepper is not None
        for state in Explorer(machine, compiled=False).reachable_states():
            pairs = stepper.fn(state)
            transitions = machine.enabled_transitions(state)
            assert [p[0] for p in pairs] == transitions
            for (_, nxt), tr in zip(pairs, transitions):
                expected = machine.next_state(state, tr)
                assert nxt == expected
                assert hash(nxt) == hash(expected)

    def test_repeat_calls_are_stable(self):
        # Successor hash-consing must not leak state between calls.
        machine = machine_for(SMALL, "tso")
        stepper = stepper_for(machine)
        state = machine.initial_state()
        first = stepper.fn(state)
        second = stepper.fn(state)
        assert [p[0] for p in first] == [p[0] for p in second]
        assert [p[1] for p in first] == [p[1] for p in second]


class TestLitmusEquivalence:
    @pytest.mark.parametrize("model", ["sc", "tso", "ra"])
    @pytest.mark.parametrize("name", LITMUS)
    def test_logs_identical(self, name, model):
        compiled = run_litmus(name, model, compiled=True)
        interpreted = run_litmus(name, model, compiled=False)
        assert compiled == interpreted


class TestCaseStudyEquivalence:
    @pytest.mark.parametrize("model", ["sc", "tso"])
    @pytest.mark.parametrize("study_name", sorted(ALL))
    def test_every_level_identical(self, study_name, model):
        study = load(study_name)
        for level in check_program(
            study.source, f"<{study_name}>"
        ).program.levels:
            mi = translate_level(
                check_program(study.source, f"<{study_name}>")
                .contexts[level.name],
                memory_model=model,
            )
            mc = translate_level(
                check_program(study.source, f"<{study_name}>")
                .contexts[level.name],
                memory_model=model,
            )
            assert_same_exploration(mi, mc, max_states=STUDY_CAP)


class TestFallback:
    def test_ra_machines_stay_interpreted(self):
        machine = machine_for(SMALL, "ra")
        assert stepper_for(machine) is None
        # compiled=True must be a harmless no-op, not an error.
        result = Explorer(machine, compiled=True).explore()
        assert result.final_outcomes == {("normal", (2,))}

    def test_per_step_fallback_is_equivalent(self):
        # The pointers study takes addresses of locals, which the
        # specializer does not compile; those steps run through the
        # inline interpreter fallback.
        study = load("pointers")
        checked = check_program(study.source, "<pointers>")
        level = checked.program.levels[0].name
        machine = translate_level(checked.contexts[level])
        stepper = stepper_for(machine)
        assert stepper is not None
        assert stepper.fallback_steps > 0
        assert stepper.compiled_steps > 0
        mi = translate_level(
            check_program(study.source, "<pointers>").contexts[level]
        )
        assert_same_exploration(mi, machine)

    def test_compiled_off_disables_stepper(self):
        machine = machine_for(SMALL, "tso")
        assert Explorer(machine, compiled=False).stepper is None
        assert Explorer(machine, compiled=True).stepper is not None


class TestBudgetTruncation:
    """A truncated sweep is reported identically by both paths and is
    never silently completed."""

    @pytest.mark.parametrize("compiled", [False, True])
    def test_walk_reports_incomplete(self, compiled):
        machine = machine_for(SMALL, "tso")
        complete = Explorer(
            machine, max_states=5, compiled=compiled
        ).walk(lambda state, transitions: True)
        assert complete is False

    @pytest.mark.parametrize("compiled", [False, True])
    def test_reachable_states_raises(self, compiled):
        machine = machine_for(SMALL, "tso")
        explorer = Explorer(machine, max_states=5, compiled=compiled)
        with pytest.raises(StateBudgetExceeded):
            list(explorer.reachable_states())

    @pytest.mark.parametrize("compiled", [False, True])
    def test_budget_truncated_counter(self, compiled, tmp_path):
        machine = machine_for(SMALL, "tso")
        path = tmp_path / "trace.jsonl"
        OBS.enable(path)
        try:
            Explorer(machine, max_states=5, compiled=compiled).walk(
                lambda state, transitions: True
            )
            with pytest.raises(StateBudgetExceeded):
                list(
                    Explorer(
                        machine, max_states=5, compiled=compiled
                    ).reachable_states()
                )
        finally:
            OBS.disable()
        records = [
            json.loads(line)
            for line in path.read_text().splitlines() if line
        ]
        counters = {}
        for record in records:
            if record.get("type") == "counters":
                counters.update(record.get("counters", {}))
        assert counters.get("explorer.budget_truncated", 0) >= 2


class TestSourceCache:
    def test_second_compile_hits_disk_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("ARMADA_STEPC_CACHE", str(tmp_path))
        first = compile_stepper(machine_for(SMALL, "tso"))
        assert first.cache_hit is False
        second = compile_stepper(machine_for(SMALL, "tso"))
        assert second.cache_hit is True
        assert second.source == first.source
        assert second.compiled_steps == first.compiled_steps
        assert second.fallback_steps == first.fallback_steps

    def test_corrupt_cache_entry_regenerates(self, tmp_path,
                                             monkeypatch):
        monkeypatch.setenv("ARMADA_STEPC_CACHE", str(tmp_path))
        first = compile_stepper(machine_for(SMALL, "tso"))
        (tmp_path / f"{first.cache_key}.py").write_text("syntax error(")
        recovered = compile_stepper(machine_for(SMALL, "tso"))
        assert recovered.cache_hit is False
        state = machine_for(SMALL, "tso").initial_state()
        # Successor states are machine-independent values (Transition
        # objects are not: they hold per-machine Step identities).
        assert [p[1] for p in recovered.fn(state)] == \
            [p[1] for p in first.fn(state)]

    def test_model_is_part_of_the_key(self):
        sc = compile_stepper(machine_for(SMALL, "sc"))
        tso = compile_stepper(machine_for(SMALL, "tso"))
        assert sc.cache_key != tso.cache_key
