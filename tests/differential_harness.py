"""Shared harness for differential exploration sweeps.

Every reduction the explorer offers — static ample-set POR, dynamic
POR + sleep sets, thread-symmetry, hash-sharded partitioning, and the
regular-to-atomic lift — must be *observationally invisible*.  This
module holds the machinery the differential suites
(:mod:`tests.test_reduction_differential`,
:mod:`tests.test_fuzz_differential`) share: the mode dispatcher, the
verdict projection each mode must preserve bit-for-bit, the
trace-replay check, and a memo of checked programs / machines / full
fan-out baselines so each (program, model) baseline is explored once
per module, not once per comparison.
"""

from repro.casestudies import ALL, load
from repro.explore import Explorer, ShardedExplorer, canonical_replay
from repro.lang.frontend import check_level, check_program
from repro.machine.state import TERM_UB
from repro.machine.translator import translate_level

from tests.test_por import LITMUS, STUDY_BUDGETS

#: The reduced / partitioned modes, each compared against "full".
REDUCED_MODES = (
    "por", "dpor", "dpor+symmetry", "sharded2", "atomic", "atomic+dpor",
)

#: Explorer keyword arguments per non-sharded mode.
MODE_KWARGS = {
    "full": {},
    "por": {"por": True},
    "dpor": {"dpor": True},
    "dpor+symmetry": {"dpor": True, "symmetry": True},
    "atomic": {"atomic": True},
    "atomic+dpor": {"atomic": True, "dpor": True},
}


def case_rows():
    """Every level of every case study, as (id, study, level) rows."""
    rows = []
    for name in sorted(ALL):
        study = load(name)
        checked = check_program(study.source, f"<{name}>")
        for level in checked.program.levels:
            rows.append((f"{name}/{level.name}", name, level.name))
    return rows


def explore_mode(machine, budget, mode, invariants=None):
    """Explore *machine* under one named mode of the sweep."""
    if mode == "sharded2":
        return ShardedExplorer(
            machine, workers=2, max_states=budget
        ).explore(invariants)
    return Explorer(
        machine, budget, **MODE_KWARGS[mode]
    ).explore(invariants)


def verdict(result):
    """Everything a reduction must preserve exactly.  UB reasons
    compare as a set: a reduction may reach the same UB through fewer
    distinct states, but never report a reason the full sweep lacks
    (or miss one it has)."""
    return (
        frozenset(result.final_outcomes),
        frozenset(result.ub_reasons),
        bool(result.assert_failures),
        sorted({v.invariant_name for v in result.violations}),
        result.hit_state_budget,
    )


def assert_traces_replay(machine, result):
    """Every counterexample trace must replay on a fresh unreduced
    machine to the outcome it claims.  Macro transitions recorded by
    the atomic lift are flattened into micro steps before they reach a
    trace, so the same replay covers every mode."""
    for reason, trace in zip(result.ub_reasons, result.ub_traces):
        final = canonical_replay(machine, trace)
        assert final.termination is not None
        assert final.termination.kind == TERM_UB
        assert final.termination.detail == reason
    for violation in result.violations:
        # Invariant predicates are re-checked by the caller (they need
        # the predicate, not just the trace); here we only require the
        # trace to be structurally replayable.
        canonical_replay(machine, violation.trace)


class Sweep:
    """Shared memo of checked programs, machines, and full baselines."""

    def __init__(self):
        self._checked = {}
        self._machines = {}
        self._full = {}

    def checked(self, study):
        if study not in self._checked:
            source = load(study).source
            self._checked[study] = check_program(source, f"<{study}>")
        return self._checked[study]

    def case_machine(self, study, level, model):
        key = (study, level, model)
        if key not in self._machines:
            ctx = self.checked(study).contexts[level]
            self._machines[key] = translate_level(ctx, memory_model=model)
        return self._machines[key]

    def litmus_machine(self, name, model):
        key = ("litmus", name, model)
        if key not in self._machines:
            ctx = check_level("level L { " + LITMUS[name] + " }")
            self._machines[key] = translate_level(ctx, memory_model=model)
        return self._machines[key]

    def full_case(self, study, level, model):
        key = (study, level, model)
        if key not in self._full:
            machine = self.case_machine(study, level, model)
            self._full[key] = explore_mode(
                machine, STUDY_BUDGETS[study], "full"
            )
        return self._full[key]

    def full_litmus(self, name, model):
        key = ("litmus", name, model)
        if key not in self._full:
            machine = self.litmus_machine(name, model)
            self._full[key] = explore_mode(machine, 2_000_000, "full")
        return self._full[key]
