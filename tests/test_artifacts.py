"""Tests for proof artifacts (lemmas, scripts, rendering, SLOC)."""

from repro.lang.frontend import check_level
from repro.machine.translator import translate_level
from repro.proofs.artifacts import Lemma, ProofScript, bool_verdict
from repro.proofs.library import (
    LIBRARY_LEMMAS,
    render_library_preamble,
)
from repro.proofs.render import (
    describe_step_effect,
    render_machine_definitions,
    step_constructor_name,
)


def sample_script():
    script = ProofScript("P", "weakening", "Low", "High")
    script.add(Lemma(
        name="First",
        statement="1 == 1",
        body=["// trivial"],
        obligation=lambda: bool_verdict(True),
    ))
    script.add(Lemma(
        name="Second",
        statement="2 == 2",
        body=["// also trivial"],
    ))
    return script


class TestLemma:
    def test_render_contains_name_and_statement(self):
        lemma = Lemma("L1", "x == y", ["// body line"])
        rendered = lemma.render()
        assert "lemma L1()" in rendered
        assert "ensures x == y" in rendered
        assert "// body line" in rendered

    def test_sloc_counts_nonblank(self):
        lemma = Lemma("L1", "x == y", ["a", "", "b"])
        assert lemma.sloc() == lemma.render().count("\n") + 1 - 1  # blank

    def test_customization_rendered(self):
        lemma = Lemma("L1", "x == y", [], customization=["hint();"])
        assert "lemma customization" in lemma.render()


class TestProofScript:
    def test_render_module_wrapper(self):
        rendered = sample_script().render()
        assert "module Proof_P" in rendered
        assert "Low refines High" in rendered

    def test_failed_lemmas_before_checking(self):
        script = sample_script()
        failed = script.failed_lemmas()
        assert [l.name for l in failed] == ["First"]  # unchecked

    def test_all_checked_after_obligations_run(self):
        script = sample_script()
        for lemma in script.lemmas:
            if lemma.obligation:
                lemma.verdict = lemma.obligation()
        assert script.all_checked
        assert not script.failed_lemmas()

    def test_sloc_positive(self):
        assert sample_script().sloc() > 5


class TestRenderMachine:
    def test_definitions_cover_machine_parts(self):
        machine = translate_level(check_level(
            "level L { var x: uint32; ghost var g: int; "
            "void main() { var t: uint32 := 0; t := x; "
            "if t > 0 { x := 1; } } }"
        ))
        lines = render_machine_definitions(machine)
        text = "\n".join(lines)
        assert "datatype PC_L" in text
        assert "datatype Globals_L" in text
        assert "ghost g: int" in text
        assert "storeBuffer" in text
        assert text.count("function NextState_Step_") == \
            machine.step_count()

    def test_step_constructor_names_unique(self):
        machine = translate_level(check_level(
            "level L { var x: uint32; void main() "
            "{ x := 1; x := 2; x := 3; } }"
        ))
        names = [step_constructor_name(s) for s in machine.all_steps()]
        assert len(names) == len(set(names))

    def test_describe_step_effect(self):
        machine = translate_level(check_level(
            "level L { var x: uint32; void main() { x ::= 5; } }"
        ))
        effects = [describe_step_effect(s) for s in machine.all_steps()]
        assert "x ::= 5" in effects


class TestLibrary:
    def test_library_lemmas_named(self):
        names = [statement for statement, _ in LIBRARY_LEMMAS]
        text = " ".join(names)
        assert "CohenLamportReduction" in text
        assert "RelyGuaranteeSoundness" in text
        assert "TsoElimination" in text
        assert "RefinementTransitive" in text

    def test_preamble_renders(self):
        lines = render_library_preamble()
        assert len(lines) > len(LIBRARY_LEMMAS)
