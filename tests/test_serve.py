"""Tests for ``armada serve``: protocol, daemon lifecycle, concurrent
clients, incremental re-verification, drain + restart resume.

The in-process tests run the real asyncio daemon on a background
thread (:class:`DaemonThread`) and talk to it over its real Unix
socket with the real client — only signal delivery is simulated by
calling the same ``initiate_drain`` hook the SIGTERM handler invokes.
The subprocess tests cover actual signal delivery.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.serve import protocol
from repro.serve.client import ServeClient, ServeError
from repro.serve.daemon import ArmadaDaemon, DaemonThread

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")

QUICK_CHAIN = """
level Impl {
  var x: uint32;
  void main() { x := 3; print_uint32(x); }
}
level Mid {
  var x: uint32;
  ghost var g: int;
  void main() { x := 3; g := 1; print_uint32(x); }
}
level Spec {
  var x: uint32;
  ghost var g: int;
  void main() { x := *; g := 1; print_uint32(x); }
}
proof ImplToMid { refinement Impl Mid var_intro }
proof MidToSpec { refinement Mid Spec nondet_weakening }
"""

#: One level of the slow family: two worker threads contending on a
#: mutex.  With ``validate: always`` each refinement pair costs one
#: multi-second whole-program product sweep — enough wall-clock to
#: catch a drain mid-job deterministically.
SLOW_LEVEL = """
level L%d {
  var counter: uint32;
  var mutex: uint64;
  var done: uint32;
  void worker() {
    var i: uint32;
    i := 0;
    while (i < 1) {
      lock(&mutex);
      counter := counter + 1;
      unlock(&mutex);
      i := i + 1;
    }
  }
  void main() {
    var t1: uint64;
    var t2: uint64;
    t1 := create_thread worker();
    t2 := create_thread worker();
    join(t1);
    join(t2);
    done := 1;
    print_uint32(counter);
  }
}
"""


def slow_chain(pairs: int) -> str:
    parts = [SLOW_LEVEL % i for i in range(pairs + 1)]
    for i in range(pairs):
        parts.append(
            "proof P%d { refinement L%d L%d weakening }" % (i, i, i + 1)
        )
    return "\n".join(parts)


def start_daemon(state_dir, **kwargs):
    daemon = ArmadaDaemon(state_dir=state_dir, **kwargs)
    thread = DaemonThread(daemon)
    thread.__enter__()
    client = ServeClient(socket_path=daemon.socket_path)
    client.wait_until_ready()
    return daemon, thread, client


class TestProtocol:
    def test_roundtrip(self):
        message = {"op": "submit", "source": "x", "n": 3, "f": True}
        assert protocol.decode(protocol.encode(message)) == message

    def test_encode_is_one_line(self):
        encoded = protocol.encode({"a": "multi\nline"})
        assert encoded.endswith(b"\n")
        assert encoded.count(b"\n") == 1

    def test_decode_rejects_garbage(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode(b"not json\n")
        with pytest.raises(protocol.ProtocolError):
            protocol.decode(b"\n")
        with pytest.raises(protocol.ProtocolError):
            protocol.decode(b"[1, 2]\n")
        with pytest.raises(protocol.ProtocolError):
            protocol.decode(b"\xff\xfe\n")

    def test_stream_tagging(self):
        assert protocol.stream(x=1)["stream"] is True
        assert "stream" not in protocol.ok(x=1)
        assert protocol.error("boom")["ok"] is False


class TestDaemonBasics:
    @pytest.fixture()
    def served(self, tmp_path):
        daemon, thread, client = start_daemon(tmp_path / "state")
        yield daemon, client
        thread.stop()

    def test_ping(self, served):
        _, client = served
        response = client.ping()
        assert response["pong"] is True
        assert response["version"] == protocol.PROTOCOL_VERSION

    def test_verify_matches_batch(self, served):
        from repro.proofs.engine import verify_source

        _, client = served
        batch = verify_source(QUICK_CHAIN)
        job_id = client.submit(QUICK_CHAIN, name="chain")
        response = client.result(job_id, wait=True, timeout=60)
        assert response["state"] == "done"
        result = response["result"]
        assert result["status"] == batch.status == "verified"
        assert result["chain"] == batch.chain
        assert result["end_to_end"] is batch.end_to_end
        served_verdicts = [
            (o["proof"], o["strategy"], o["status"])
            for o in result["outcomes"]
        ]
        batch_verdicts = [
            (o.proof_name, o.strategy,
             "verified" if o.success else "failed")
            for o in batch.outcomes
        ]
        assert served_verdicts == batch_verdicts

    def test_lifecycle_events(self, served):
        _, client = served
        job_id = client.submit(QUICK_CHAIN, name="ev")
        client.result(job_id, wait=True, timeout=60)
        kinds = [e["kind"] for e in client.events(job_id)]
        assert kinds == [
            "submitted", "started", "incremental", "finished",
        ]

    def test_errors_are_responses_not_disconnects(self, served):
        _, client = served
        with pytest.raises(ServeError, match="no such job"):
            client.status("j-999999")
        with pytest.raises(ServeError, match="unknown kind"):
            client.submit("level A {}", kind="transmogrify")
        with pytest.raises(ServeError, match="non-empty 'source'"):
            client.submit("   ")
        with pytest.raises(ServeError, match="unknown op"):
            client.request({"op": "frobnicate"})
        # The connection machinery survived all of the above.
        assert client.ping()["pong"] is True

    def test_bad_program_is_job_error_not_crash(self, served):
        _, client = served
        job_id = client.submit("level Broken { syntax error",
                               name="bad")
        response = client.result(job_id, wait=True, timeout=60)
        assert response["state"] == "error"
        assert response.get("error")
        # Daemon still healthy afterwards.
        assert client.ping()["pong"] is True

    def test_stats_counters(self, served):
        _, client = served
        job_id = client.submit(QUICK_CHAIN, name="st")
        client.result(job_id, wait=True, timeout=60)
        stats = client.stats()
        assert stats["submitted"] == 1
        assert stats["completed"] == 1
        assert stats["jobs"] == {"done": 1}
        assert stats["cache"]["max_bytes"] is None
        assert set(stats["outcome_cache"]) >= {
            "entries", "hits", "misses", "stores", "evictions",
        }

    def test_analyze_and_explore_kinds(self, served):
        _, client = served
        analyze_id = client.submit(
            QUICK_CHAIN, kind="analyze", options={"level": "Impl"}
        )
        explore_id = client.submit(
            QUICK_CHAIN, kind="explore", options={"level": "Impl"}
        )
        analyzed = client.result(analyze_id, wait=True, timeout=60)
        explored = client.result(explore_id, wait=True, timeout=60)
        assert analyzed["result"]["status"] == "analyzed"
        assert analyzed["result"]["racy"] == []
        assert explored["result"]["status"] == "explored"
        assert explored["result"]["states"] > 0
        assert not explored["result"]["violations"]


class TestConcurrentClients:
    def test_three_clients_verdicts_match_batch(self, tmp_path):
        from repro.analysis import analyze_level
        from repro.explore import Explorer
        from repro.lang.frontend import check_program
        from repro.machine.translator import translate_level
        from repro.proofs.engine import verify_source

        # Batch-mode ground truth.
        batch_verify = verify_source(QUICK_CHAIN)
        checked = check_program(QUICK_CHAIN, "<t>")
        batch_racy = analyze_level(
            checked.contexts["Impl"], max_states=200_000
        ).racy()
        batch_explore = Explorer(
            translate_level(checked.contexts["Impl"]),
            max_states=200_000, por=True,
        ).explore()

        daemon, thread, _ = start_daemon(tmp_path / "state", slots=2)
        results: dict = {}
        errors: list = []

        def run_client(tag, kind, options):
            try:
                client = ServeClient(socket_path=daemon.socket_path)
                job_id = client.submit(
                    QUICK_CHAIN, kind=kind, name=tag, options=options
                )
                results[tag] = client.result(
                    job_id, wait=True, timeout=120
                )
            except Exception as error:  # noqa: BLE001
                errors.append((tag, error))

        clients = [
            threading.Thread(
                target=run_client, args=("verify", "verify", {})
            ),
            threading.Thread(
                target=run_client,
                args=("analyze", "analyze", {"level": "Impl"}),
            ),
            threading.Thread(
                target=run_client,
                args=("explore", "explore", {"level": "Impl"}),
            ),
        ]
        try:
            for t in clients:
                t.start()
            for t in clients:
                t.join(timeout=120)
        finally:
            thread.stop()
        assert not errors
        assert results["verify"]["result"]["status"] == \
            batch_verify.status
        assert [
            (o["proof"], o["status"])
            for o in results["verify"]["result"]["outcomes"]
        ] == [
            (o.proof_name, "verified" if o.success else "failed")
            for o in batch_verify.outcomes
        ]
        assert results["analyze"]["result"]["racy"] == batch_racy
        assert results["explore"]["result"]["states"] == \
            batch_explore.states_visited

    def test_cancel_queued_job_never_runs(self, tmp_path):
        daemon, thread, client = start_daemon(
            tmp_path / "state", slots=1
        )
        try:
            # Occupy the single slot, then cancel a queued job.
            running = client.submit(
                slow_chain(1), name="runner",
                options={"validate": "always"},
            )
            queued = client.submit(QUICK_CHAIN, name="victim")
            status = client.cancel(queued)
            assert status["state"] == "cancelled"
            response = client.result(queued, wait=True, timeout=30)
            assert response["state"] == "cancelled"
            # The occupant is unaffected.
            occupant = client.result(running, wait=True, timeout=120)
            assert occupant["result"]["status"] == "verified"
            kinds = [e["kind"] for e in client.events(queued)]
            assert "started" not in kinds
            assert "cancel_requested" in kinds
        finally:
            thread.stop()


class TestIncremental:
    def test_warm_resubmit_reuses_everything(self, tmp_path):
        daemon, thread, client = start_daemon(tmp_path / "state")
        try:
            cold_id = client.submit(QUICK_CHAIN, name="prog")
            cold = client.result(cold_id, wait=True, timeout=60)
            inc = cold["result"]["incremental"]
            assert inc["first_submission"] is True
            assert inc["reverified_proofs"] == 2
            assert inc["reused_proofs"] == 0

            warm_id = client.submit(QUICK_CHAIN, name="prog")
            warm = client.result(warm_id, wait=True, timeout=60)
            inc = warm["result"]["incremental"]
            assert inc["first_submission"] is False
            assert inc["changed_levels"] == []
            assert inc["unchanged_levels"] == ["Impl", "Mid", "Spec"]
            assert inc["invalidated_proofs"] == []
            assert inc["reused_proofs"] == 2
            assert inc["reverified_proofs"] == 0
            # Verdicts are identical to the cold run's.
            assert [o["status"] for o in warm["result"]["outcomes"]] \
                == [o["status"] for o in cold["result"]["outcomes"]]
            assert all(o["from_cache"]
                       for o in warm["result"]["outcomes"])
        finally:
            thread.stop()

    def test_one_level_edit_reverifies_only_its_proofs(self, tmp_path):
        daemon, thread, client = start_daemon(tmp_path / "state")
        try:
            cold_id = client.submit(QUICK_CHAIN, name="prog")
            client.result(cold_id, wait=True, timeout=60)

            # Edit only Spec (semantic change: g becomes nondet, which
            # is still a valid weakening of Mid's g := 1).
            edited = QUICK_CHAIN.replace(
                "x := *; g := 1;", "x := *; g := *;"
            )
            assert edited != QUICK_CHAIN
            edit_id = client.submit(edited, name="prog")
            response = client.result(edit_id, wait=True, timeout=60)
            inc = response["result"]["incremental"]
            assert inc["changed_levels"] == ["Spec"]
            assert inc["unchanged_levels"] == ["Impl", "Mid"]
            # Only the proof touching Spec was invalidated; the other
            # was replayed from the outcome cache without discharging
            # a single obligation.
            assert inc["invalidated_proofs"] == ["MidToSpec"]
            assert inc["reused_proofs"] == 1
            assert inc["reverified_proofs"] == 1
            by_proof = {
                o["proof"]: o for o in response["result"]["outcomes"]
            }
            assert by_proof["ImplToMid"]["from_cache"] is True
            assert by_proof["MidToSpec"]["from_cache"] is False
            assert response["result"]["status"] == "verified"
        finally:
            thread.stop()

    def test_different_names_are_different_tenants(self, tmp_path):
        daemon, thread, client = start_daemon(tmp_path / "state")
        try:
            a = client.submit(QUICK_CHAIN, name="tenant-a")
            client.result(a, wait=True, timeout=60)
            # Same source under a new name: the fingerprint diff is
            # per-tenant (first submission), but the outcome cache is
            # content-addressed and shared — proofs are still reused.
            b = client.submit(QUICK_CHAIN, name="tenant-b")
            response = client.result(b, wait=True, timeout=60)
            inc = response["result"]["incremental"]
            assert inc["first_submission"] is True
            assert inc["reused_proofs"] == 2
        finally:
            thread.stop()


class TestDrainAndResume:
    def test_drain_keeps_unfinished_jobs_pending(self, tmp_path):
        state = tmp_path / "state"
        daemon, thread, client = start_daemon(state, slots=1)
        running = client.submit(
            slow_chain(1), name="inflight",
            options={"validate": "always"},
        )
        queued = client.submit(QUICK_CHAIN, name="patient")
        # Wait until the slow job is actually mid-obligation: its farm
        # exists once parse/translate are done and the sweep began.
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            if daemon.jobs[running].farm is not None:
                break
            time.sleep(0.05)
        assert daemon.jobs[running].farm is not None
        time.sleep(0.3)
        assert client.status(running)["state"] == "running"
        thread.stop()  # the same drain SIGTERM triggers
        assert thread.exit_code == 0
        # The in-flight obligation finished during the drain: its job
        # settled and was marked done.  The queued job never started.
        assert daemon.jobs[running].state == "done"
        assert daemon.jobs[running].result["status"] == "verified"
        assert daemon.jobs[queued].state == "queued"

        pending = [
            json.loads(line)
            for line in (state / "pending.jsonl").read_text()
            .splitlines() if line.strip()
        ]
        done_ids = {r["id"] for r in pending if r.get("done")}
        open_ids = {
            r["id"] for r in pending
            if not r.get("done") and "source" in r
        } - done_ids
        assert running in done_ids
        assert queued in open_ids

        # A new daemon on the same state dir resumes the queued job.
        daemon2, thread2, client2 = start_daemon(state, slots=1)
        try:
            response = client2.result(queued, wait=True, timeout=60)
            assert response["state"] == "done"
            assert response["result"]["status"] == "verified"
            kinds = [e["kind"] for e in client2.events(queued)]
            assert kinds[0] == "resumed"
        finally:
            thread2.stop()

    def test_draining_daemon_rejects_submits(self, tmp_path):
        daemon, thread, client = start_daemon(tmp_path / "state")
        try:
            # Set the flag without tearing the server down, so the
            # rejection (not a connection error) is what we observe.
            daemon.draining = True
            assert client.ping()["draining"] is True
            with pytest.raises(ServeError, match="draining"):
                client.submit(QUICK_CHAIN)
        finally:
            thread.stop()


@pytest.mark.flaky
class TestRealSignals:
    """Actual SIGTERM against real subprocesses."""

    def _env(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = REPO_SRC
        return env

    def test_serve_sigterm_then_restart_resumes(self, tmp_path):
        state = tmp_path / "state"
        sock = tmp_path / "armada.sock"
        argv = [
            sys.executable, "-m", "repro.cli", "serve",
            "--state-dir", str(state), "--socket", str(sock),
            "--slots", "1",
        ]
        proc = subprocess.Popen(
            argv, env=self._env(),
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        try:
            client = ServeClient(socket_path=sock)
            client.wait_until_ready(timeout=30)
            # Two slow proofs: SIGTERM lands while the first is in
            # flight, so the second is cancelled and the job ends
            # inconclusive — i.e. it must survive into pending.jsonl.
            job_id = client.submit(
                slow_chain(2), name="interrupted",
                options={"validate": "always"},
            )
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if client.status(job_id)["state"] == "running":
                    break
                time.sleep(0.05)
            time.sleep(0.5)  # well inside the first obligation
            proc.send_signal(signal.SIGTERM)
            stdout, stderr = proc.communicate(timeout=60)
            assert proc.returncode == 0
            assert "Traceback" not in stderr
            assert "drained" in stderr
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()

        # The interrupted job is still pending on disk.
        pending = (state / "pending.jsonl").read_text()
        assert job_id in pending

        # A restarted daemon picks it up and finishes it.
        proc = subprocess.Popen(
            argv, env=self._env(),
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        try:
            client = ServeClient(socket_path=sock)
            client.wait_until_ready(timeout=30)
            response = client.result(job_id, wait=True, timeout=120)
            assert response["state"] == "done"
            assert response["result"]["status"] == "verified"
            client.shutdown()
            stdout, stderr = proc.communicate(timeout=60)
            assert proc.returncode == 0
            assert "resumed 1 unfinished job" in stderr
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()

    def test_batch_verify_sigterm_drains_without_traceback(
        self, tmp_path
    ):
        program = tmp_path / "chain.arm"
        # 6 proofs at >=1.5s each: a signal 2s in is always mid-run,
        # with at least a few obligations still unsettled afterwards.
        program.write_text(slow_chain(6))
        journal = tmp_path / "journal.jsonl"
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "verify",
                str(program), "--validate", "always", "--no-cache",
                "--journal", str(journal),
            ],
            env=self._env(), cwd=tmp_path,
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        try:
            time.sleep(2.0)
            assert proc.poll() is None, proc.communicate()
            proc.send_signal(signal.SIGTERM)
            stdout, stderr = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 130
        assert "Traceback" not in stderr
        assert "drain requested" in stderr
        assert "drained after signal" in stderr
        # The run reported inconclusive — nothing was refuted.
        assert "INCONCLUSIVE" in stdout
        # The journal was flushed (created; settled verdicts only).
        assert journal.exists()
