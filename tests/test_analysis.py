"""Tests for ``repro.analysis`` — the static race & TSO-robustness
analyzer and its wiring into the proof engine.

The analyzer's claims are adversarially grounded two ways here: litmus
tests whose racy/robust status is known from the x86-TSO literature,
and the shipped case studies whose verdicts are cross-checked against
the bounded explorer (a reported race must come with a dynamic
witness; a lock-protected claim must survive predicate replay).
"""

import json

import pytest

from repro.analysis import (
    Classification,
    analyze_level,
    validate_predicate,
)
from repro.lang.frontend import check_level, check_program
from repro.proofs.engine import verify_source


def analyze_source(source: str, max_states: int = 200_000):
    """Analyze a single bare level body."""
    ctx = check_level("level L { " + source + " }")
    return analyze_level(ctx, max_states=max_states)


SB_SOURCE = (
    "var x: uint32; var y: uint32; var r1: uint32; var r2: uint32; "
    "void t1() { x := 1; r1 := y; fence(); } "
    "void main() { var a: uint64 := 0; a := create_thread t1(); "
    "y := 1; r2 := x; join a; fence(); print_uint32(r2); }"
)

MP_SOURCE = (
    "var data: uint32; var flag: uint32; "
    "var rf: uint32; var rd: uint32; "
    "void writer() { data := 42; flag := 1; } "
    "void main() { var a: uint64 := 0; a := create_thread writer(); "
    "rf := flag; rd := data; join a; fence(); print_uint32(rd); }"
)

LOCKED_SOURCE = (
    "var c: uint32; var m: uint64; "
    "void worker() { lock(&m); c := c + 1; unlock(&m); } "
    "void main() { var a: uint64 := 0; var r: uint32 := 0; "
    "initialize_mutex(&m); a := create_thread worker(); "
    "lock(&m); c := c + 1; unlock(&m); join a; "
    "lock(&m); r := c; unlock(&m); print_uint32(r); }"
)


class TestLitmusClassification:
    def test_store_buffering_is_racy_with_witnesses(self):
        result = analyze_source(SB_SOURCE)
        for name in ("x", "y"):
            verdict = result.verdict(name)
            assert verdict.classification is Classification.RACY
            assert verdict.dynamic == "confirmed"
            assert verdict.witness is not None
            first, second = verdict.witness.first_tid, \
                verdict.witness.second_tid
            assert first != second
        assert result.racy() == ["x", "y"]

    def test_store_buffering_is_tso_sensitive(self):
        result = analyze_source(SB_SOURCE)
        sensitive = {
            name for name, v in result.verdicts.items() if v.tso_sensitive
        }
        assert sensitive == {"x", "y"}

    def test_sb_registers_are_not_racy(self):
        result = analyze_source(SB_SOURCE)
        # r2 is written and read by main alone; r1 is written by t1 and
        # read never concurrently (post-join reads race only through
        # pending drains, and t1 fences before returning).
        assert result.classification("r2") is Classification.THREAD_LOCAL
        assert result.classification("r1") in (
            Classification.THREAD_LOCAL, Classification.ORDERED
        )

    def test_message_passing_is_racy_but_tso_robust(self):
        result = analyze_source(MP_SOURCE)
        assert set(result.racy()) == {"data", "flag"}
        sensitive = [
            name for name, v in result.verdicts.items() if v.tso_sensitive
        ]
        # TSO's FIFO buffers preserve the publication order: no load
        # can observe flag without data, so no store is flagged.
        assert sensitive == []


class TestLockDiscipline:
    def test_lock_protected_counter(self):
        result = analyze_source(LOCKED_SOURCE)
        verdict = result.verdict("c")
        assert verdict.classification is Classification.LOCK_PROTECTED
        assert verdict.locks == ("m",)
        assert result.classification("m") is Classification.ATOMIC
        assert result.racy() == []

    def test_ownership_suggestion_validated(self):
        result = analyze_source(LOCKED_SOURCE)
        suggestion = result.suggestion_for("c")
        assert suggestion is not None
        assert suggestion.predicate == "m == $me"
        assert suggestion.validated

    def test_wrong_predicate_rejected(self):
        result = analyze_source(LOCKED_SOURCE)
        ok, note = validate_predicate(
            result.ctx, result.machine, result.access_map,
            "c", "m != $me",
        )
        assert not ok
        assert "access" in note or "simultaneously" in note


class TestThreadLocalFastPathGate:
    SOURCE = (
        "var x: uint32; "
        "void main() { x := 1; x := x + 1; print_uint32(x); }"
    )

    def test_single_threaded_global_is_provably_thread_local(self):
        result = analyze_source(self.SOURCE)
        assert result.classification("x") is Classification.THREAD_LOCAL
        assert result.is_provably_thread_local("x")

    def test_gate_requires_complete_dynamic_corroboration(self):
        static_only = analyze_level(
            check_level("level L { " + self.SOURCE + " }"),
            dynamic=False,
        )
        assert (
            static_only.classification("x")
            is Classification.THREAD_LOCAL
        )
        assert not static_only.is_provably_thread_local("x")


class TestStaticOnlyMode:
    def test_static_racy_stays_unchecked_without_scan(self):
        result = analyze_level(
            check_level("level L { " + SB_SOURCE + " }"),
            dynamic=False,
        )
        verdict = result.verdict("x")
        assert verdict.classification is Classification.RACY
        assert verdict.dynamic == "unchecked"
        assert verdict.witness is None


class TestReport:
    def test_text_report_mentions_witness(self):
        text = analyze_source(SB_SOURCE).report().render_text()
        assert "RACY" in text
        assert "witness:" in text
        assert "dynamic cross-check" in text

    def test_json_report_round_trips(self):
        data = json.loads(analyze_source(SB_SOURCE).report().to_json())
        assert data["level"] == "L"
        racy = [
            f for f in data["findings"] if f["classification"] == "RACY"
        ]
        assert {f["location"] for f in racy} == {"x", "y"}
        assert all(f["severity"] == "high" for f in racy)
        assert data["stats"]["dynamic_complete"] is True


FASTPATH_PROGRAM = (
    "level Low { var x: uint32 := 0; void main() "
    "{ x := 1; x := x + 1; print_uint32(x); } }\n"
    "level High { var x: uint32 := 0; void main() "
    "{ x ::= 1; x ::= x + 1; print_uint32(x); } }\n"
    'proof P { refinement Low High tso_elim x "true" }\n'
)


class TestEngineWiring:
    def test_fast_path_discharges_thread_local_elimination(self):
        outcome = verify_source(FASTPATH_PROGRAM, analyze=True)
        assert outcome.success
        assert any(
            "provably thread-local" in note
            for note in outcome.analysis_notes
        )
        script = outcome.outcomes[0].script
        fast = [
            lemma for lemma in script.lemmas
            if "discharged by repro.analysis" in " ".join(lemma.body)
        ]
        assert len(fast) == 3
        assert all(lemma.verdict.ok for lemma in fast)

    def test_without_analyze_no_fast_path(self):
        outcome = verify_source(FASTPATH_PROGRAM, analyze=False)
        assert outcome.success
        assert outcome.analysis_notes == []
        script = outcome.outcomes[0].script
        assert not any(
            "discharged by repro.analysis" in " ".join(lemma.body)
            for lemma in script.lemmas
        )

    def test_racy_tso_elim_target_warned(self):
        program = (
            "level Low { var x: uint32; var r: uint32; "
            "void t() { x := 1; } "
            "void main() { var a: uint64 := 0; a := create_thread t(); "
            "x := 2; r := x; join a; fence(); print_uint32(r); } }\n"
            "level High { var x: uint32; var r: uint32; "
            "void t() { x ::= 1; } "
            "void main() { var a: uint64 := 0; a := create_thread t(); "
            "x ::= 2; r := x; join a; fence(); print_uint32(r); } }\n"
            'proof P { refinement Low High tso_elim x "true" }\n'
        )
        outcome = verify_source(program, analyze=True)
        assert any(
            "WARNING" in note and "RACY" in note
            for note in outcome.analysis_notes
        )
        # ... and the ownership obligations (not fast-pathed) fail.
        assert not outcome.success

    def test_matching_predicate_confirmed(self):
        from pathlib import Path

        source = (
            Path(__file__).parent.parent / "examples"
            / "running_example.arm"
        ).read_text()
        outcome = verify_source(source, analyze=True)
        assert outcome.success
        assert any(
            "matches the analyzer's validated suggestion" in note
            for note in outcome.analysis_notes
        )


class TestCaseStudies:
    """Acceptance: every global of every case-study implementation
    level is classified, and no race is reported without a dynamic
    witness (zero false positives relative to the bounded explorer)."""

    @pytest.mark.parametrize("name,max_states", [
        ("tsp", 200_000),
        ("barrier", 200_000),
        ("mcslock", 400_000),
        ("queue", 400_000),
        ("pointers", 200_000),
    ])
    def test_every_global_classified_and_races_witnessed(
        self, name, max_states
    ):
        from repro.casestudies import load

        study = load(name)
        checked = check_program(study.source, f"<{name}>")
        level_name = checked.program.levels[0].name
        result = analyze_level(
            checked.contexts[level_name], max_states=max_states
        )
        level_globals = {
            g.name for g in checked.contexts[level_name].level.globals
        }
        assert set(result.verdicts) == level_globals
        assert all(
            v.classification is not None
            for v in result.verdicts.values()
        )
        assert result.dynamic is not None and result.dynamic.complete
        for racy_name in result.racy():
            verdict = result.verdict(racy_name)
            assert verdict.dynamic == "confirmed", (
                f"{name}.{racy_name} reported RACY without a witness"
            )
            assert verdict.witness is not None

    def test_lock_protected_studies_race_free(self):
        """tsp and pointers must report no races at all."""
        from repro.casestudies import load

        for name in ("tsp", "pointers"):
            study = load(name)
            checked = check_program(study.source, f"<{name}>")
            level_name = checked.program.levels[0].name
            result = analyze_level(checked.contexts[level_name])
            assert result.racy() == [], f"false positive in {name}"

    def test_tsp_chain_gets_validated_suggestion(self):
        """Acceptance: the analyzer synthesizes a working tso_elim
        predicate for the level the TSP recipe eliminates."""
        from repro.casestudies import load

        study = load("tsp")
        checked = check_program(study.source, "<tsp>")
        result = analyze_level(checked.contexts["ArbitraryGuard"])
        suggestion = result.suggestion_for("best_len")
        assert suggestion is not None
        assert suggestion.predicate == "mutex == $me"
        assert suggestion.validated
