"""Tests for the type checker."""

import pytest

from repro.errors import TypeError_
from repro.lang import types as ty
from repro.lang.frontend import check_level


def check(source: str):
    return check_level("level L { " + source + " }")


def rejected(source: str) -> str:
    with pytest.raises(TypeError_) as info:
        check(source)
    return str(info.value)


class TestAssignments:
    def test_literal_adopts_target_width(self):
        ctx = check("var x: uint8; void m() { x := 255; }")
        assert ctx is not None

    def test_literal_out_of_range(self):
        assert "out of range" in rejected(
            "var x: uint8; void m() { x := 256; }"
        )

    def test_no_implicit_narrowing(self):
        rejected(
            "var a: uint8; var b: uint32; void m() { a := b; }"
        )

    def test_arity_mismatch(self):
        assert "right-hand sides" in rejected(
            "var a: uint8; void m() { a := 1, 2; }"
        )

    def test_assign_to_literal_rejected(self):
        rejected("void m() { 5 := 1; }")

    def test_multi_assign(self):
        check("var a: uint8; var b: uint8; void m() { a, b := 1, 2; }")


class TestOperators:
    def test_mixed_widths_rejected(self):
        rejected(
            "var a: uint8; var b: uint16; void m() { a := a + b; }"
        )

    def test_fixed_plus_literal(self):
        check("var a: uint32; void m() { a := a + 1; }")

    def test_mathint_absorbs_fixed(self):
        check("ghost var n: int; var a: uint32; "
              "void m() { n := n + a; }")

    def test_logic_requires_bool(self):
        rejected("var a: uint8; void m() { assert a && true; }")

    def test_shift_requires_fixed(self):
        rejected("ghost var n: int; void m() { n := n << 2; }")

    def test_bitand_on_mathint_rejected(self):
        rejected("ghost var n: int; void m() { n := n & 1; }")

    def test_comparison_result_is_bool(self):
        check("var a: uint8; void m() { assert a < 3; }")

    def test_negation(self):
        check("ghost var n: int; void m() { n := -n; }")


class TestPointers:
    def test_address_of_gives_pointer(self):
        check("var g: uint32; void m() "
              "{ var p: ptr<uint32> := null; p := &g; }")

    def test_pointer_type_mismatch(self):
        rejected("var g: uint64; void m() "
                 "{ var p: ptr<uint32> := null; p := &g; }")

    def test_deref_non_pointer(self):
        rejected("var g: uint32; void m() { g := *g; }")

    def test_null_assignable_to_any_pointer(self):
        check("void m() { var p: ptr<uint64> := null; }")

    def test_address_of_rvalue_rejected(self):
        rejected("void m() { var p: ptr<uint32> := null; p := &(1); }")

    def test_pointer_offset(self):
        check("var arr: uint32[4]; void m() "
              "{ var p: ptr<uint32> := null; p := &arr[0]; p := p + 1; }")

    def test_field_access_on_non_struct(self):
        rejected("var g: uint32; void m() { g := g.field; }")

    def test_index_into_scalar(self):
        rejected("var g: uint32; void m() { g := g[0]; }")


class TestStatements:
    def test_guard_must_be_bool(self):
        rejected("var a: uint8; void m() { if a { } }")

    def test_nondet_guard_allowed(self):
        check("void m() { if (*) { } }")

    def test_return_type_checked(self):
        rejected("uint32 m() { return true; }")

    def test_void_return_with_value(self):
        assert "void" in rejected("void m() { return 3; }")

    def test_value_return_without_value(self):
        rejected("uint32 m() { return; }")

    def test_join_requires_thread_id(self):
        rejected("var g: uint32; void m() { join g; }")

    def test_dealloc_requires_pointer(self):
        rejected("var g: uint32; void m() { dealloc g; }")

    def test_somehow_modifies_lvalues_only(self):
        rejected("void m() { somehow modifies 1 + 1; }")

    def test_old_only_in_two_state(self):
        assert "old" in rejected(
            "var g: uint32; void m() { assert old(g) == 0; }"
        )

    def test_old_in_somehow_ensures(self):
        check("var g: uint32; void m() "
              "{ somehow modifies g ensures g == old(g) + 1; }")

    def test_call_argument_types(self):
        rejected(
            "void callee(n: uint32) { } "
            "void m() { callee(true); }"
        )

    def test_call_arity(self):
        rejected("void callee(n: uint32) { } void m() { callee(); }")


class TestMethodCallsInExpressions:
    def test_method_call_in_guard_rejected(self):
        # The MCSLock bug class: effects silently dropped.
        message = rejected(
            "var t: uint64; void m() "
            "{ if (compare_and_swap(&t, 0, 1)) { } }"
        )
        assert "expression" in message

    def test_method_call_as_rhs_allowed(self):
        check(
            "var t: uint64; void m() { var ok: bool := false; "
            "ok := compare_and_swap(&t, 0, 1); }"
        )

    def test_uninterpreted_predicate_in_guard_allowed(self):
        check("void m() { if good_enough() { } }")


class TestGhostTypes:
    def test_seq_operations(self):
        check(
            "ghost var q: seq<uint64>; void m() "
            "{ q := q + [1]; assert len(q) > 0; q := drop(q, 1); }"
        )

    def test_first_requires_seq(self):
        rejected("ghost var n: int; void m() { n := first(n); }")

    def test_in_requires_collection(self):
        rejected("ghost var n: int; void m() { assert 1 in n; }")

    def test_set_membership(self):
        check("ghost var s: set<int>; void m() { assert 1 in s; }")

    def test_map_indexing(self):
        check("ghost var m1: map<int, bool>; void m() "
              "{ assert m1[0]; }")

    def test_option_compare_with_none(self):
        check("ghost var o: option<uint64>; void m() "
              "{ assert o == None; }")

    def test_some_constructor(self):
        check("ghost var o: option<uint64>; void m() "
              "{ o := Some(5); }")

    def test_nondet_needs_context(self):
        assert "infer" in rejected("void m() { assert (*) == (*); }")
