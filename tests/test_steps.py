"""Unit tests for individual step semantics (enabledness, effects,
encapsulated nondeterminism, atomic-region scheduling)."""

import pytest

from repro.lang.frontend import check_level
from repro.machine.program import DomainConfig, Transition
from repro.machine.steps import (
    AssumeStep,
    BranchStep,
    ExternStep,
    JoinStep,
    MallocStep,
    SomehowStep,
)
from repro.machine.translator import translate_level
from repro.machine.values import Location, Root


def setup(source: str):
    machine = translate_level(check_level("level L { " + source + " }"))
    return machine, machine.initial_state()


def run_until(machine, state, predicate, limit=500):
    """Advance deterministically (first transition) until *predicate*."""
    for _ in range(limit):
        if predicate(state):
            return state
        transitions = machine.enabled_transitions(state)
        if not transitions:
            return state
        state = machine.next_state(state, transitions[0])
    raise AssertionError("predicate never satisfied")


class TestEnabledness:
    def test_branch_directions_mutually_exclusive(self):
        machine, state = setup(
            "void main() { var x: uint32 := 5; if x > 3 { } }"
        )
        state = run_until(
            machine, state,
            lambda s: s.running and machine.pcs[
                s.thread(1).pc
            ].kind == "guard" if s.thread(1).pc else False,
        )
        enabled = machine.enabled_transitions(state)
        branches = [t for t in enabled
                    if isinstance(t.step, BranchStep)]
        assert len(branches) == 1
        assert branches[0].step.when is True

    def test_nondet_branch_both_enabled(self):
        machine, state = setup("void main() { if (*) { } }")
        enabled = machine.enabled_transitions(state)
        branches = [t for t in enabled if isinstance(t.step, BranchStep)]
        assert {b.step.when for b in branches} == {True, False}

    def test_assume_blocks_until_true(self):
        machine, state = setup(
            "var x: uint32; void main() { assume x == 1; }"
        )
        enabled = machine.enabled_transitions(state)
        assert not any(isinstance(t.step, AssumeStep) for t in enabled
                       if t.step)
        loc = Location(Root("global", "x"))
        state2 = state.with_memory(loc, 1)
        enabled2 = machine.enabled_transitions(state2)
        assert any(isinstance(t.step, AssumeStep) for t in enabled2
                   if t.step)

    def test_lock_blocks_when_held(self):
        machine, state = setup(
            "var mu: uint64; void main() { lock(&mu); lock(&mu); }"
        )
        # Acquire once.
        state = machine.next_state(
            state, machine.enabled_transitions(state)[0]
        )
        # The second lock on the same mutex is disabled (self-deadlock).
        enabled = machine.enabled_transitions(state)
        assert not enabled

    def test_join_blocks_until_target_terminates(self):
        machine, state = setup(
            "var x: uint32; void worker() { x ::= 1; } "
            "void main() { var h: uint64 := 0; "
            "h := create_thread worker(); join h; }"
        )
        state = run_until(
            machine, state,
            lambda s: s.thread(1).pc is not None
            and machine.pcs[s.thread(1).pc].kind == "join",
        )
        joins = [
            t for t in machine.enabled_transitions(state)
            if t.step is not None and isinstance(t.step, JoinStep)
        ]
        worker_done = state.threads[2].terminated
        assert bool(joins) == worker_done


class TestEncapsulatedNondeterminism:
    def test_malloc_has_alloc_parameter(self):
        machine, state = setup(
            "void main() { var p: ptr<uint32> := null; "
            "p := malloc(uint32); }"
        )
        malloc_step = next(
            s for s in machine.all_steps() if isinstance(s, MallocStep)
        )
        variables = malloc_step.nondet_vars()
        assert len(variables) == 1
        assert variables[0].kind == "alloc"

    def test_somehow_has_havoc_parameters(self):
        machine, state = setup(
            "var x: uint32; var y: uint32; "
            "void main() { somehow modifies x, y; }"
        )
        step = next(
            s for s in machine.all_steps() if isinstance(s, SomehowStep)
        )
        assert len(step.nondet_vars()) == 2
        assert all(v.kind == "havoc" for v in step.nondet_vars())

    def test_next_state_is_deterministic(self):
        machine, state = setup(
            "void main() { var x: uint32; if (*) { } }"
        )
        for transition in machine.enabled_transitions(state):
            a = machine.next_state(state, transition)
            b = machine.next_state(state, transition)
            assert a == b

    def test_domain_config_override(self):
        machine, state = setup(
            "var x: uint32; void main() { x := *; }"
        )
        machine.domains = DomainConfig(int_values=(7, 8, 9))
        values = set()
        for transition in machine.enabled_transitions(state):
            nxt = machine.next_state(state, transition)
            loc = Location(Root("global", "x"))
            nxt = nxt.drain_one(1) if not nxt.thread(1).sb_empty else nxt
            values.add(nxt.memory.get(loc))
        assert values == {7, 8, 9}

    def test_witness_candidates_from_ensures(self):
        machine, state = setup(
            "var x: uint32; void main() "
            "{ x := 1; somehow modifies x ensures x == old(x) + 41; }"
        )
        # Run to the somehow, then check 42 is among its parameter
        # assignments even though the default domain is {0, 1}.
        state = run_until(
            machine, state,
            lambda s: s.thread(1).pc is not None
            and machine.pcs[s.thread(1).pc].kind == "somehow"
            and s.thread(1).sb_empty,
        )
        step = machine.steps_at(state.thread(1).pc)[0]
        assignments = machine.param_assignments(step, "main", state, 1)
        values = {dict(p).popitem()[1] for p in assignments if p}
        assert 42 in values


class TestAtomicScheduling:
    SOURCE = (
        "var x: uint32; "
        "void worker() { atomic { x ::= 1; x ::= 2; x ::= 3; } } "
        "void main() { var h: uint64 := 0; var t: uint32 := 0; "
        "h := create_thread worker(); t := x; join h; }"
    )

    def test_owner_excludes_other_threads(self):
        machine, state = setup(self.SOURCE)
        # Drive the worker into the atomic region.
        for _ in range(200):
            transitions = machine.enabled_transitions(state)
            if state.atomic_owner == 2:
                break
            worker_steps = [t for t in transitions if t.tid == 2]
            state = machine.next_state(
                state, worker_steps[0] if worker_steps else transitions[0]
            )
        assert state.atomic_owner == 2
        tids = {t.tid for t in machine.enabled_transitions(state)}
        assert tids == {2}

    def test_owner_cleared_at_region_exit(self):
        machine, state = setup(self.SOURCE)
        from repro.runtime.interpreter import run_level

        result = run_level(machine)
        assert result.termination_kind == "normal"
        assert result.state.atomic_owner is None


class TestExternSemantics:
    def test_unlock_by_non_owner_is_ub(self):
        machine, state = setup(
            "var mu: uint64; void other() { unlock(&mu); } "
            "void main() { var h: uint64 := 0; lock(&mu); "
            "h := create_thread other(); join h; }"
        )
        from repro.explore.explorer import Explorer

        result = Explorer(machine).explore()
        assert result.has_ub
        assert any("not held" in r for r in result.ub_reasons)

    def test_fence_requires_empty_buffer(self):
        machine, state = setup(
            "var x: uint32; void main() { x := 1; fence(); }"
        )
        state = machine.next_state(
            state, machine.enabled_transitions(state)[0]
        )  # buffered write
        fences = [
            t for t in machine.enabled_transitions(state)
            if t.step is not None and isinstance(t.step, ExternStep)
        ]
        if not state.thread(1).sb_empty:
            assert not fences  # only the drain is enabled
