"""Tests for the proof engine: chains, directives, customization."""

from repro.lang.frontend import check_program
from repro.proofs.engine import ProofEngine, verify_source


TWO_STEP_CHAIN = """
level Impl {
  var x: uint32;
  void main() { x := 3; print_uint32(x); }
}
level Mid {
  var x: uint32;
  ghost var g: int;
  void main() { x := 3; g := 1; print_uint32(x); }
}
level Spec {
  var x: uint32;
  ghost var g: int;
  void main() { x := *; g := 1; print_uint32(x); }
}
proof ImplToMid { refinement Impl Mid var_intro }
proof MidToSpec { refinement Mid Spec nondet_weakening }
"""


class TestChains:
    def test_chain_composed(self):
        outcome = verify_source(TWO_STEP_CHAIN)
        assert outcome.success
        assert outcome.chain == ["Impl", "Mid", "Spec"]
        assert outcome.end_to_end

    def test_total_generated_sloc_accumulates(self):
        outcome = verify_source(TWO_STEP_CHAIN)
        assert outcome.total_generated_sloc == sum(
            o.generated_sloc for o in outcome.outcomes
        )
        assert outcome.total_generated_sloc > 0

    def test_broken_link_breaks_chain_success(self):
        source = TWO_STEP_CHAIN.replace("g := 1; print_uint32(x);",
                                        "g := 2; print_uint32(x);", 1)
        outcome = verify_source(source)
        assert not outcome.success

    def test_unknown_level_reported(self):
        outcome = verify_source(
            "level A { void main() { } } "
            "proof P { refinement A Missing weakening }"
        )
        assert not outcome.outcomes[0].success


class TestChainDiagnostics:
    LEVELS = (
        "level A { var x: uint32; void main() { x := 1; } }\n"
        "level B { var x: uint32; void main() { x := 1; } }\n"
        "level C { var x: uint32; void main() { x := 1; } }\n"
        "level D { var x: uint32; void main() { x := 1; } }\n"
    )

    def test_valid_chain_has_no_error(self):
        outcome = verify_source(TWO_STEP_CHAIN)
        assert outcome.chain_error is None

    def test_cycle_reported(self):
        outcome = verify_source(
            self.LEVELS
            + "proof P { refinement A B weakening }\n"
            + "proof Q { refinement B A weakening }\n"
        )
        assert outcome.chain == []
        assert not outcome.end_to_end
        assert "cyclic" in outcome.chain_error

    def test_broken_chain_reported(self):
        outcome = verify_source(
            self.LEVELS
            + "proof P { refinement A B weakening }\n"
            + "proof Q { refinement C D weakening }\n"
        )
        assert outcome.chain == []
        assert "broken" in outcome.chain_error
        assert "A" in outcome.chain_error and "C" in outcome.chain_error

    def test_disconnected_cycle_reported(self):
        outcome = verify_source(
            self.LEVELS
            + "proof P { refinement A B weakening }\n"
            + "proof Q { refinement C D weakening }\n"
            + "proof R { refinement D C weakening }\n"
        )
        assert outcome.chain == []
        assert outcome.chain_error is not None

    def test_no_proofs_reported(self):
        outcome = verify_source("level A { void main() { } }")
        assert outcome.chain == []
        assert "no proofs" in outcome.chain_error


class TestEngineMechanics:
    def test_machines_cached(self):
        checked = check_program(TWO_STEP_CHAIN)
        engine = ProofEngine(checked)
        assert engine.machine("Mid") is engine.machine("Mid")

    def test_validate_always_adds_whole_program_lemma(self):
        checked = check_program(TWO_STEP_CHAIN)
        engine = ProofEngine(checked, validate_refinement="always")
        outcome = engine.run_proof(checked.program.proofs[0])
        assert outcome.success
        names = [l.name for l in outcome.script.lemmas]
        assert "WholeProgramRefinement" in names

    def test_validate_never_skips_global_checks(self):
        checked = check_program(TWO_STEP_CHAIN)
        engine = ProofEngine(checked, validate_refinement="never")
        outcome = engine.run_proof(checked.program.proofs[0])
        names = [l.name for l in (outcome.script.lemmas if outcome.script
                                  else [])]
        assert "WholeProgramRefinement" not in names

    def test_lemma_customization_appended(self):
        source = (
            "level A { var x: uint32; void main() { x := 1; } } "
            "level B { var x: uint32; void main() { x := 1; } } "
            "proof P { refinement A B weakening "
            'lemma Statement_main_0_Weakens "assert BitvectorFact(x);" }'
        )
        outcome = verify_source(source)
        assert outcome.outcomes[0].success
        rendered = outcome.outcomes[0].script.render()
        assert "lemma customization" in rendered
        assert "BitvectorFact" in rendered

    def test_use_regions_directive_adds_lemmas(self):
        source = (
            "level A { var a: uint32; void main() "
            "{ var p: ptr<uint32> := null; p := &a; } } "
            "level B { var a: uint32; void main() "
            "{ var p: ptr<uint32> := null; p := &a; } } "
            "proof P { refinement A B weakening use_regions }"
        )
        outcome = verify_source(source)
        assert outcome.outcomes[0].success
        names = [l.name for l in outcome.outcomes[0].script.lemmas]
        assert "RegionAssignment" in names

    def test_generated_proof_renders_state_machine(self):
        outcome = verify_source(TWO_STEP_CHAIN)
        rendered = outcome.outcomes[1].script.render()
        assert "datatype PC_" in rendered
        assert "NextState_" in rendered
        assert "storeBuffer" in rendered

    def test_strategy_error_is_reported_not_raised(self):
        outcome = verify_source(
            "level A { var x: uint32; void main() { x := 1; } } "
            "level B { var x: uint32; void main() { x := 2; x := 1; } } "
            "proof P { refinement A B weakening }"
        )
        assert not outcome.outcomes[0].success
        assert "correspondence" in outcome.outcomes[0].error


#: A refinement whose obligations enumerate reachable states (tso_elim
#: ownership sweeps), used to probe budget and reduction behaviour.
SWEEPING_PROOF = (
    "level Low { var x: uint32 := 0; void main() { "
    "x := x + 1; x := x + 2; print_uint32(x); } } "
    "level High { var x: uint32 := 0; void main() { "
    "x ::= x + 1; x ::= x + 2; print_uint32(x); } } "
    'proof P { refinement Low High tso_elim x "true" }'
)


class TestStateBudgetHonesty:
    def test_truncated_sweep_refutes_instead_of_passing(self):
        # A budget too small for the state space must fail the proof —
        # never let a silently truncated enumeration discharge an
        # obligation.
        ok = verify_source(SWEEPING_PROOF)
        assert ok.success
        clipped = verify_source(SWEEPING_PROOF, max_states=3)
        assert not clipped.success
        assert any(
            "state budget" in (o.error or "") for o in clipped.outcomes
        )


class TestPorPlumbing:
    def test_por_outcome_matches_unreduced(self):
        plain = verify_source(SWEEPING_PROOF)
        reduced = verify_source(SWEEPING_PROOF, por=True)
        assert plain.success and reduced.success
        assert plain.por_summary is None
        assert reduced.por_summary is not None
        assert reduced.por_summary.startswith("POR:")

    def test_por_changes_job_fingerprint(self):
        checked = check_program(SWEEPING_PROOF)
        with_por = ProofEngine(checked, por=True)._job_fingerprint()
        without = ProofEngine(checked, por=False)._job_fingerprint()
        assert with_por != without
        assert "por=on" in with_por and "por=off" in without
