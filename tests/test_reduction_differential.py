"""Differential sweep of the full reduction stack.

The explorer offers five ways to shrink (or partition) the state
sweep: static ample-set POR (:mod:`repro.explore.por`), dynamic POR
with sleep sets (:mod:`repro.explore.dpor`), thread-symmetry
canonicalization (:mod:`repro.explore.symmetry`), hash-sharded
multi-process exploration (:mod:`repro.explore.sharded`), and the
regular-to-atomic lift (:mod:`repro.explore.atomic`).  All of them
must be *observationally invisible*: on every case-study level and
every litmus shape, under every memory model that admits them, the
final outcomes, UB reasons, assertion-failure presence,
invariant-violation existence and budget status are bit-identical to
the full single-process fan-out.  Sharding must additionally visit
exactly the same states (it partitions, it does not prune), and every
counterexample trace a reduced or sharded run reports must replay on a
fresh unreduced machine to the claimed outcome.

The mode dispatcher, verdict projection, replay check and the memo of
full-fan-out baselines live in :mod:`tests.differential_harness`,
shared with the Hypothesis fuzz sweep.
"""

import pytest

from repro.casestudies import load
from repro.cli import _invariant_predicate
from repro.explore import Explorer, ShardedExplorer, canonical_replay
from repro.lang.frontend import check_level, check_program
from repro.machine.state import TERM_UB
from repro.machine.translator import translate_level

from tests.differential_harness import (
    REDUCED_MODES,
    Sweep,
    assert_traces_replay,
    case_rows,
    explore_mode,
    verdict,
)
from tests.test_por import LITMUS, STUDY_BUDGETS

#: Memory models litmus shapes run under.  Case-study levels sweep
#: sc + tso; release/acquire is covered by TestRaFallback (under RA
#: every reduction degrades to the identical unreduced exploration,
#: so sweeping all modes there would compare a run against itself).
LITMUS_MODELS = ("sc", "tso")
CASE_MODELS = ("sc", "tso")

_CASE_ROWS = case_rows()


@pytest.fixture(scope="module")
def sweep():
    return Sweep()


class TestCaseStudyLevels:
    @pytest.mark.parametrize("model", CASE_MODELS)
    @pytest.mark.parametrize("mode", REDUCED_MODES)
    @pytest.mark.parametrize(
        "row", _CASE_ROWS, ids=[r[0] for r in _CASE_ROWS]
    )
    def test_mode_preserves_verdict(self, sweep, row, mode, model):
        _, study, level = row
        full = sweep.full_case(study, level, model)
        machine = sweep.case_machine(study, level, model)
        result = explore_mode(machine, STUDY_BUDGETS[study], mode)
        assert verdict(result) == verdict(full), (row[0], mode, model)
        if mode == "sharded2":
            # Sharding partitions; it must visit exactly the full
            # state space.
            assert result.states_visited == full.states_visited
            assert result.transitions_taken == full.transitions_taken
        else:
            assert result.states_visited <= full.states_visited
        assert_traces_replay(machine, result)


class TestLitmusShapes:
    @pytest.mark.parametrize("model", LITMUS_MODELS)
    @pytest.mark.parametrize("mode", REDUCED_MODES)
    @pytest.mark.parametrize("name", sorted(LITMUS))
    def test_mode_preserves_verdict(self, sweep, name, mode, model):
        full = sweep.full_litmus(name, model)
        machine = sweep.litmus_machine(name, model)
        result = explore_mode(machine, 2_000_000, mode)
        assert verdict(result) == verdict(full), (name, mode, model)
        if mode == "sharded2":
            assert result.states_visited == full.states_visited
            assert result.transitions_taken == full.transitions_taken
        assert_traces_replay(machine, result)


# ---------------------------------------------------------------------------
# Invariant violations and UB counterexamples must survive every mode.

#: A racy unprotected counter: the invariant "g stays 0 or k" is
#: violated along some interleavings, and every mode must find it.
_RACY_COUNTER = (
    "var g: uint32 := 0; "
    "void w() { var t: uint32 := 0; t := g; g := t + 1; } "
    "void main() { var a: uint64 := 0; var b: uint64 := 0; "
    "a := create_thread w(); b := create_thread w(); "
    "join a; join b; fence(); } "
)

#: Racing division: one thread zeroes the divisor another reads —
#: some schedules divide by zero (UB), others don't.
_RACY_DIV = (
    "var d: uint32 := 1; var out: uint32 := 0; "
    "void z() { d := 0; } "
    "void main() { var a: uint64 := 0; var t: uint32 := 0; "
    "a := create_thread z(); t := d; out := 10 / t; "
    "join a; fence(); } "
)


class TestCounterexamplesSurvive:
    @pytest.mark.parametrize("mode", ("full",) + REDUCED_MODES)
    def test_invariant_violation_found_everywhere(self, mode):
        ctx = check_level("level L { " + _RACY_COUNTER + " }")
        machine = translate_level(ctx)
        predicate = _invariant_predicate(ctx, machine, "g < 2")
        result = explore_mode(
            machine, 200_000, mode, invariants={"g<2": predicate}
        )
        assert result.violations, mode
        # The trace replays on an unreduced machine to a state that
        # refutes the invariant.
        violation = result.violations[0]
        fresh = translate_level(ctx)
        final = canonical_replay(fresh, violation.trace)
        assert not predicate(final), mode

    @pytest.mark.parametrize("mode", ("full",) + REDUCED_MODES)
    def test_ub_trace_replays_everywhere(self, mode):
        ctx = check_level("level L { " + _RACY_DIV + " }")
        machine = translate_level(ctx)
        result = explore_mode(machine, 200_000, mode)
        assert result.has_ub, mode
        assert result.ub_traces, mode
        for reason, trace in zip(result.ub_reasons, result.ub_traces):
            fresh = translate_level(ctx)
            final = canonical_replay(fresh, trace)
            assert final.termination is not None
            assert final.termination.kind == TERM_UB
            assert final.termination.detail == reason


# ---------------------------------------------------------------------------
# Release/acquire: every reduction flag must cleanly no-op.

class TestRaFallback:
    """Under C11 release/acquire the independence and symmetry
    arguments do not cover the model's view-advance environment moves,
    so the explorer must drop every reduction flag, say so, and
    produce the identical unreduced exploration."""

    @pytest.mark.parametrize(
        "flags",
        [
            {"por": True},
            {"dpor": True},
            {"symmetry": True},
            {"dpor": True, "symmetry": True},
            {"atomic": True},
            {"atomic": True, "dpor": True},
        ],
        ids=["por", "dpor", "symmetry", "dpor+symmetry", "atomic",
             "atomic+dpor"],
    )
    @pytest.mark.parametrize("name", ("SB", "MP"))
    def test_flags_noop_cleanly(self, name, flags):
        ctx = check_level("level L { " + LITMUS[name] + " }")
        baseline = Explorer(
            translate_level(ctx, memory_model="ra"), 2_000_000
        ).explore()
        explorer = Explorer(
            translate_level(ctx, memory_model="ra"), 2_000_000, **flags
        )
        assert explorer.reductions_disabled is not None
        assert "ra" in explorer.reductions_disabled
        assert explorer.reducer is None
        assert explorer.symmetry is None
        assert explorer.atomic is None
        result = explorer.explore()
        assert result.states_visited == baseline.states_visited
        assert result.transitions_taken == baseline.transitions_taken
        assert verdict(result) == verdict(baseline)
        assert result.por_stats is None
        assert result.atomic_stats is None

    def test_sharding_composes_with_ra(self):
        """Sharding is a partition, not a reduction: it stays sound
        under RA and must match the unreduced single-process sweep."""
        ctx = check_level("level L { " + LITMUS["SB"] + " }")
        baseline = Explorer(
            translate_level(ctx, memory_model="ra"), 2_000_000
        ).explore()
        sharded = ShardedExplorer(
            translate_level(ctx, memory_model="ra"), workers=2,
            max_states=2_000_000,
        ).explore()
        assert sharded.states_visited == baseline.states_visited
        assert verdict(sharded) == verdict(baseline)

    def test_case_study_level_noops_under_ra(self):
        study = load("queue")
        checked = check_program(study.source, "<queue>")
        ctx = checked.contexts["QueueImpl"]
        baseline = Explorer(
            translate_level(ctx, memory_model="ra"), 400_000
        ).explore()
        explorer = Explorer(
            translate_level(ctx, memory_model="ra"), 400_000,
            dpor=True, symmetry=True, atomic=True,
        )
        assert explorer.reductions_disabled is not None
        result = explorer.explore()
        assert verdict(result) == verdict(baseline)
        assert result.states_visited == baseline.states_visited


# ---------------------------------------------------------------------------
# The reductions must actually pay, not merely not lose.

class TestDynamicPayoff:
    def test_dpor_beats_static_on_queue(self, sweep):
        """Acceptance floor: on QueueImpl under TSO the static rule is
        nearly blind (buffered stores alias in its pc-level facts)
        while the dynamic rule prunes ≥30% of states."""
        full = sweep.full_case("queue", "QueueImpl", "tso")
        machine = sweep.case_machine("queue", "QueueImpl", "tso")
        static = explore_mode(machine, STUDY_BUDGETS["queue"], "por")
        dynamic = explore_mode(machine, STUDY_BUDGETS["queue"], "dpor")
        static_saved = 1 - static.states_visited / full.states_visited
        dynamic_saved = 1 - dynamic.states_visited / full.states_visited
        assert static_saved <= 0.20
        assert dynamic_saved >= 0.30

    @pytest.mark.parametrize("model", CASE_MODELS)
    @pytest.mark.parametrize("study,level", [
        ("queue", "QueueImpl"), ("mcslock", "MCSImpl"),
    ])
    def test_atomic_prunes_queue_and_mcslock(
        self, sweep, study, level, model
    ):
        """Acceptance floor for the regular-to-atomic lift: on the
        queue and mcslock implementation levels it must hide ≥25% of
        states (the measured cut is ~40-45%)."""
        full = sweep.full_case(study, level, model)
        machine = sweep.case_machine(study, level, model)
        result = explore_mode(machine, STUDY_BUDGETS[study], "atomic")
        saved = 1 - result.states_visited / full.states_visited
        assert saved >= 0.25, (study, level, model, saved)
        assert result.atomic_stats is not None
        assert result.atomic_stats.chains > 0
