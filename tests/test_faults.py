"""Chaos suite: the verification farm must survive its fault model.

Injected faults (``repro.faults``) drive every resilience path the farm
claims to have: deterministic retries with backoff, per-obligation and
whole-chain deadlines yielding inconclusive TIMEOUT verdicts, *real*
``kill -9`` of process-pool workers with requeue + pool respawn, cache
self-healing on truncated/garbage entries, and journal-based resume.
Each scenario asserts the headline guarantee — the surviving run
reports the same verdicts a fault-free run would, except for
obligations that were deliberately timed out — plus the observability
contract (retry/timeout/crash counts in events and traces) and
hygiene (no orphan worker processes).
"""

import json
import os
import pickle
import time

import pytest

from repro.errors import FaultPlanError
from repro.farm import (
    DEADLINE_EXPIRED,
    FAULT_INJECTED,
    JOB_ABANDONED,
    JOB_RETRY,
    JOB_TIMEOUT,
    JOURNAL_HIT,
    PROCESS,
    SEQUENTIAL,
    THREAD,
    WORKER_CRASH,
    WORKER_RESPAWN,
    EventLog,
    FarmConfig,
    Job,
    Journal,
    ProofCache,
    ResilienceConfig,
    VerificationFarm,
    run_jobs,
)
from repro.faults import FaultPlan, FaultRule, load_fault_plan
from repro.proofs.artifacts import proved
from repro.proofs.engine import verify_source
from repro.verifier.prover import (
    PROVED,
    REFUTED,
    TIMEOUT,
    UNKNOWN,
    Verdict,
)

EXAMPLE = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "examples", "running_example.arm",
)


def _ok_thunk():
    """Module-level (hence picklable) obligation that always proves."""
    return proved()


def _job(index: int, thunk=None, sink=None):
    def apply(result, index=index):
        if sink is not None:
            sink[index] = result

    return Job(
        key=f"key-{index}", label=f"proof:lemma{index}",
        thunk=thunk or _ok_thunk, apply=apply,
    )


def _fast_retries(**kwargs) -> ResilienceConfig:
    kwargs.setdefault("retry_base_delay", 0.001)
    kwargs.setdefault("retry_max_delay", 0.01)
    return ResilienceConfig(**kwargs)


def _child_pids() -> set[int]:
    pid = os.getpid()
    try:
        with open(f"/proc/{pid}/task/{pid}/children") as handle:
            return {int(p) for p in handle.read().split()}
    except OSError:
        return set()


def _assert_no_orphans(before: set[int], deadline: float = 5.0) -> None:
    """Every worker spawned since *before* must be gone (reaped)."""
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        leftover = _child_pids() - before
        if not leftover:
            return
        time.sleep(0.02)
    raise AssertionError(f"orphan worker processes: {leftover}")


# ----------------------------------------------------------------------
# fault plans


class TestFaultPlan:
    def test_round_trip_and_defaulted_phase(self):
        plan = FaultPlan.from_dict({
            "seed": 3,
            "faults": [
                {"action": "crash_worker", "index": 1},
                {"action": "corrupt_cache_entry", "label": "lemma"},
            ],
        })
        assert plan.seed == 3
        assert plan.rules[0].phase == "execute"
        assert plan.rules[1].phase == "cache_store"
        assert FaultPlan.from_dict(plan.to_dict()).rules == plan.rules

    def test_addressing(self):
        rule = FaultRule("raise", index=2, label="Owner", attempt=1)
        assert rule.matches("execute", 2, "p:OwnerLemma", 1)
        assert not rule.matches("execute", 2, "p:OwnerLemma", 0)
        assert not rule.matches("execute", 3, "p:OwnerLemma", 1)
        assert not rule.matches("execute", 2, "p:Other", 1)
        assert not rule.matches("cache_store", 2, "p:OwnerLemma", 1)
        every = FaultRule("raise", index=0, attempt=None)
        assert every.matches("execute", 0, "x", 0)
        assert every.matches("execute", 0, "x", 7)

    def test_rejects_unknown_action_phase_and_keys(self):
        with pytest.raises(FaultPlanError, match="unknown fault action"):
            FaultRule("explode", index=0)
        with pytest.raises(FaultPlanError, match="unknown fault phase"):
            FaultRule("raise", index=0, phase="teardown")
        with pytest.raises(FaultPlanError, match="must be addressable"):
            FaultRule("raise")
        with pytest.raises(FaultPlanError, match="unknown keys"):
            FaultPlan.from_dict(
                {"faults": [{"action": "raise", "index": 0, "when": 1}]}
            )

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps({
            "seed": 11,
            "faults": [{"action": "delay", "index": 0,
                        "seconds": 0.5}],
        }))
        plan = load_fault_plan(path)
        assert plan.seed == 11 and len(plan) == 1
        path.write_text("{not json")
        with pytest.raises(FaultPlanError, match="not valid JSON"):
            load_fault_plan(path)
        with pytest.raises(FaultPlanError, match="cannot read"):
            load_fault_plan(tmp_path / "missing.json")

    def test_plan_is_picklable(self):
        plan = FaultPlan.from_dict(
            {"faults": [{"action": "crash_worker", "index": 0}]}
        )
        assert pickle.loads(pickle.dumps(plan)) == plan


# ----------------------------------------------------------------------
# deadlines → inconclusive TIMEOUT verdicts


class TestDeadlines:
    @pytest.mark.flaky
    def test_obligation_timeout_yields_timeout_verdict(self, tmp_path):
        sink, events = {}, EventLog()
        cache = ProofCache(tmp_path / "cache")
        journal = Journal(tmp_path / "journal.jsonl")

        def slow():
            time.sleep(5.0)
            return proved()

        jobs = [_job(0, thunk=slow, sink=sink), _job(1, sink=sink)]
        started = time.monotonic()
        run_jobs(jobs, mode=SEQUENTIAL, cache=cache, events=events,
                 resilience=_fast_retries(obligation_timeout=0.05),
                 journal=journal)
        assert time.monotonic() - started < 4.0  # did not wait out sleep
        assert sink[0].status == TIMEOUT and sink[0].inconclusive
        assert sink[1].status == PROVED
        assert len(events.events(JOB_TIMEOUT)) == 1
        # Inconclusive verdicts must be pinned nowhere.
        assert cache.get(jobs[0].key) is None
        assert journal.lookup(jobs[0].key) is None
        assert cache.get(jobs[1].key).status == PROVED

    def test_timeouts_are_not_retried(self):
        sink, events = {}, EventLog()
        plan = FaultPlan.from_dict(
            {"faults": [{"action": "timeout", "index": 0,
                         "seconds": 9.9}]}
        )
        run_jobs([_job(0, sink=sink)], events=events,
                 resilience=_fast_retries(faults=plan))
        assert sink[0].status == TIMEOUT
        assert events.events(JOB_RETRY) == []

    @pytest.mark.flaky
    def test_chain_deadline_short_circuits_queue(self):
        sink, events = {}, EventLog()

        def slow():
            time.sleep(0.2)
            return proved()

        jobs = [_job(i, thunk=slow, sink=sink) for i in range(4)]
        started = time.monotonic()
        run_jobs(jobs, mode=SEQUENTIAL, events=events,
                 resilience=_fast_retries(chain_deadline=0.25))
        assert time.monotonic() - started < 2.0
        assert sink[0].status == PROVED  # ran within the budget
        assert sink[3].status == TIMEOUT  # budget gone before it ran
        statuses = [sink[i].status for i in range(4)]
        assert statuses.count(TIMEOUT) >= 2
        assert REFUTED not in statuses  # never misreported as refuted
        assert len(events.events(DEADLINE_EXPIRED)) == 1


# ----------------------------------------------------------------------
# retries with deterministic backoff


class TestRetries:
    def test_transient_fault_retried_then_succeeds(self):
        sink, events = {}, EventLog()
        plan = FaultPlan.from_dict({"faults": [
            {"action": "raise", "index": 0, "attempt": 0,
             "message": "flaky switch"},
        ]})
        jobs = [_job(i, sink=sink) for i in range(3)]
        run_jobs(jobs, events=events,
                 resilience=_fast_retries(faults=plan))
        # The chaos run's verdicts equal a fault-free run's verdicts.
        assert [sink[i].status for i in range(3)] == [PROVED] * 3
        retries = events.events(JOB_RETRY)
        assert len(retries) == 1
        assert "flaky switch" in retries[0].detail
        assert jobs[0].attempts == 2 and jobs[1].attempts == 1
        assert jobs[0].faults_hit == ["raise"]
        assert len(events.events(FAULT_INJECTED)) == 1

    def test_retry_exhaustion_goes_unknown_not_refuted(self):
        sink, events = {}, EventLog()
        plan = FaultPlan.from_dict({"faults": [
            {"action": "raise", "index": 0, "attempt": None},
        ]})
        run_jobs([_job(0, sink=sink)], events=events,
                 resilience=_fast_retries(max_retries=2, faults=plan))
        assert sink[0].status == UNKNOWN and sink[0].inconclusive
        assert len(events.events(JOB_RETRY)) == 2
        assert len(events.events(JOB_ABANDONED)) == 1

    def test_backoff_is_deterministic_and_capped(self):
        res = ResilienceConfig(retry_base_delay=0.05,
                               retry_max_delay=0.4,
                               faults=FaultPlan(seed=9))
        delays = [res.backoff_seconds("k", n) for n in (1, 2, 3, 9)]
        again = [res.backoff_seconds("k", n) for n in (1, 2, 3, 9)]
        assert delays == again  # same seed+key+attempt → same sleep
        assert all(d > 0 for d in delays)
        assert delays[-1] <= 0.4 * 2  # cap + at most 100% jitter
        other = ResilienceConfig(retry_base_delay=0.05,
                                 retry_max_delay=0.4,
                                 faults=FaultPlan(seed=10))
        assert other.backoff_seconds("k", 1) != delays[0]

    def test_simulated_crash_in_thread_mode(self):
        sink, events = {}, EventLog()
        plan = FaultPlan.from_dict({"faults": [
            {"action": "crash_worker", "index": 1, "attempt": 0},
        ]})
        jobs = [_job(i, sink=sink) for i in range(4)]
        run_jobs(jobs, mode=THREAD, max_workers=2, events=events,
                 resilience=_fast_retries(faults=plan))
        assert [sink[i].status for i in range(4)] == [PROVED] * 4
        assert len(events.events(WORKER_CRASH)) == 1
        assert len(events.events(JOB_RETRY)) == 1


# ----------------------------------------------------------------------
# real kill -9 of process-pool workers


class TestProcessPoolCrash:
    @pytest.mark.flaky
    def test_sigkill_requeues_and_respawns(self):
        before = _child_pids()
        sink, events = {}, EventLog()
        plan = FaultPlan.from_dict({"faults": [
            {"action": "crash_worker", "index": 0, "attempt": 0},
            {"action": "crash_worker", "index": 2, "attempt": 0},
        ]})
        jobs = [_job(i, sink=sink) for i in range(6)]
        run_jobs(jobs, mode=PROCESS, max_workers=2, events=events,
                 resilience=_fast_retries(faults=plan))
        # Only the in-flight obligations were lost, and only
        # transiently: every verdict matches the fault-free run.
        assert [sink[i].status for i in range(6)] == [PROVED] * 6
        assert len(events.events(WORKER_CRASH)) >= 1
        assert len(events.events(WORKER_RESPAWN)) >= 1
        assert jobs[0].attempts >= 2  # the crashed attempt was charged
        _assert_no_orphans(before)

    @pytest.mark.flaky
    def test_sigkill_every_attempt_terminates_as_unknown(self):
        # An obligation whose worker always dies must not deadlock the
        # scheduler: it burns its retry budget and goes UNKNOWN.
        before = _child_pids()
        sink, events = {}, EventLog()
        plan = FaultPlan.from_dict({"faults": [
            {"action": "crash_worker", "index": 0, "attempt": None},
        ]})
        jobs = [_job(i, sink=sink) for i in range(3)]
        started = time.monotonic()
        run_jobs(jobs, mode=PROCESS, max_workers=2, events=events,
                 resilience=_fast_retries(max_retries=1, faults=plan))
        assert time.monotonic() - started < 60.0
        assert sink[0].status == UNKNOWN
        assert sink[1].status == PROVED and sink[2].status == PROVED
        assert len(events.events(JOB_ABANDONED)) == 1
        _assert_no_orphans(before)


# ----------------------------------------------------------------------
# cache self-healing


class TestCacheSelfHealing:
    def _cache(self, tmp_path, quarantined=None):
        return ProofCache(
            tmp_path / "cache",
            on_quarantine=(
                (lambda key, reason: quarantined.append((key, reason)))
                if quarantined is not None else None
            ),
        )

    def test_hand_truncated_entry_is_quarantined_and_recomputed(
        self, tmp_path
    ):
        # Regression for the framing fix: pre-framing caches died on
        # truncated pickles; now they must heal.
        seen = []
        cache = self._cache(tmp_path, quarantined=seen)
        assert cache.put("ab" + "0" * 62, proved())
        key = "ab" + "0" * 62
        path = cache.entry_path(key)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 3])
        assert cache.get(key) is None  # a miss, not a traceback
        assert cache.quarantined == 1 and len(seen) == 1
        assert not path.exists()
        quarantine = list((tmp_path / "cache" / "quarantine").iterdir())
        assert len(quarantine) == 1
        # The slot is clean again: recompute, re-store, re-read.
        assert cache.put(key, proved())
        assert cache.get(key).status == PROVED

    @pytest.mark.parametrize("payload", [
        b"", b"garbage", b"ARMV\x02\n" + b"\x00" * 10,
        pickle.dumps(Verdict(PROVED)),  # unframed legacy entry
    ])
    def test_bad_entries_never_traceback(self, tmp_path, payload):
        cache = self._cache(tmp_path)
        key = "cd" + "1" * 62
        path = cache.entry_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(payload)
        assert cache.get(key) is None
        assert cache.quarantined == 1

    def test_checksum_detects_bit_flip(self, tmp_path):
        cache = self._cache(tmp_path)
        key = "ef" + "2" * 62
        cache.put(key, proved())
        path = cache.entry_path(key)
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF
        path.write_bytes(bytes(raw))
        assert cache.get(key) is None
        assert cache.quarantined == 1

    def test_inconclusive_verdicts_are_never_cached(self, tmp_path):
        cache = self._cache(tmp_path)
        assert not cache.put("k", Verdict(TIMEOUT))
        assert not cache.put("k", Verdict(UNKNOWN))
        assert cache.stores == 0

    def test_corrupt_cache_entry_fault_heals_on_next_run(self, tmp_path):
        plan = FaultPlan.from_dict({"faults": [
            {"action": "corrupt_cache_entry", "index": 0},
        ]})
        farm = VerificationFarm(FarmConfig(
            cache_dir=tmp_path / "cache", faults=plan,
        ))
        sink = {}
        farm.discharge([_job(0, sink=sink)])
        assert sink[0].status == PROVED
        assert farm.summary().faults_injected == 1
        # Second farm, no faults: the poisoned entry is healed, not
        # served.
        farm2 = VerificationFarm(FarmConfig(cache_dir=tmp_path / "cache"))
        sink2 = {}
        farm2.discharge([_job(0, sink=sink2)])
        assert sink2[0].status == PROVED
        assert farm2.cache.quarantined == 1
        assert farm2.summary().cache_quarantined == 1
        # Third run: the re-stored entry now serves from cache.
        farm3 = VerificationFarm(FarmConfig(cache_dir=tmp_path / "cache"))
        sink3 = {}
        farm3.discharge([_job(0, sink=sink3)])
        assert farm3.summary().cache_hits == 1


# ----------------------------------------------------------------------
# journal resume


class TestJournal:
    def test_resume_replays_settled_verdicts(self, tmp_path):
        path = tmp_path / "run.jsonl"
        calls = []

        def thunk():
            calls.append(1)
            return proved()

        events = EventLog()
        journal = Journal(path)
        sink = {}
        run_jobs([_job(0, thunk=thunk, sink=sink)], events=events,
                 journal=journal)
        journal.close()
        assert calls == [1] and sink[0].status == PROVED

        resumed = Journal(path)
        events2, sink2 = EventLog(), {}
        run_jobs([_job(0, thunk=thunk, sink=sink2)], events=events2,
                 journal=resumed)
        resumed.close()
        assert calls == [1]  # not re-executed
        assert sink2[0].status == PROVED
        assert len(events2.events(JOURNAL_HIT)) == 1
        assert events2.summary().journal_hits == 1

    def test_torn_lines_self_heal(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = Journal(path)
        journal.record("k1", Verdict(PROVED))
        journal.record(
            "k2", Verdict(REFUTED, {"witness": "x=1"})
        )
        journal.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"key": "k3", "status": "pro')  # torn write
        resumed = Journal(path)
        assert resumed.corrupt_lines == 1
        assert resumed.lookup("k1").status == PROVED
        assert resumed.lookup("k2").status == REFUTED
        assert resumed.lookup("k3") is None
        resumed.close()

    def test_only_settled_verdicts_are_journaled(self, tmp_path):
        journal = Journal(tmp_path / "run.jsonl")
        journal.record("t", Verdict(TIMEOUT))
        journal.record("u", Verdict(UNKNOWN))
        journal.record("p", Verdict(PROVED))
        journal.close()
        assert len(Journal(tmp_path / "run.jsonl")) == 1


# ----------------------------------------------------------------------
# observability: chaos is visible in traces


class TestObservability:
    def test_retry_and_timeout_counters_reach_the_trace(self, tmp_path):
        from repro.obs import OBS

        trace = tmp_path / "trace.jsonl"
        plan = FaultPlan.from_dict({"faults": [
            {"action": "raise", "index": 0, "attempt": 0},
            {"action": "timeout", "index": 1, "seconds": 0.1},
        ]})
        sink = {}
        OBS.enable(trace)
        try:
            run_jobs([_job(0, sink=sink), _job(1, sink=sink)],
                     resilience=_fast_retries(faults=plan))
        finally:
            OBS.disable()
        records = [
            json.loads(line)
            for line in trace.read_text().splitlines() if line
        ]
        counters = {}
        for record in records:
            if record["type"] in ("counters", "span"):
                counters.update(record.get("counters", {}))
        assert counters.get("farm.retries", 0) >= 1
        assert counters.get("farm.timeouts", 0) >= 1
        assert counters.get("farm.faults_injected", 0) >= 2
        fault_spans = [
            r for r in records
            if r["type"] == "span" and r.get("attrs", {}).get("fault")
        ]
        assert {s["attrs"]["fault"] for s in fault_spans} == {
            "raise", "timeout",
        }


# ----------------------------------------------------------------------
# end to end: the TSP chain under chaos


class TestEndToEndChaos:
    def _source(self):
        with open(EXAMPLE, encoding="utf-8") as handle:
            return handle.read()

    def _verdicts(self, outcome):
        rows = []
        for proof in outcome.outcomes:
            lemmas = tuple(
                (lemma.name,
                 lemma.verdict.status if lemma.verdict else None)
                for lemma in (proof.script.lemmas if proof.script else ())
            )
            rows.append((proof.proof_name, proof.success, lemmas))
        return rows

    def test_chaos_run_matches_fault_free_run(self):
        source = self._source()
        baseline = verify_source(
            source, farm=VerificationFarm(FarmConfig(jobs=4))
        )
        assert baseline.success
        plan = FaultPlan.from_dict({"seed": 7, "faults": [
            {"action": "crash_worker", "index": 0, "attempt": 0},
            {"action": "crash_worker", "index": 2, "attempt": 0},
            {"action": "raise", "index": 3, "attempt": 0},
        ]})
        farm = VerificationFarm(FarmConfig(
            jobs=4, retry_base_delay=0.001, faults=plan,
        ))
        chaos = verify_source(source, farm=farm)
        # Every fault was transient, so the chaos verdicts are the
        # baseline verdicts — bit for bit.
        assert self._verdicts(chaos) == self._verdicts(baseline)
        assert chaos.success and chaos.status == "verified"
        summary = farm.summary()
        assert summary.worker_crashes == 2
        assert summary.retries == 3
        assert summary.faults_injected == 3

    def test_injected_timeout_makes_chain_inconclusive(self):
        source = self._source()
        plan = FaultPlan.from_dict({"faults": [
            {"action": "timeout", "index": 4, "seconds": 0.5},
        ]})
        farm = VerificationFarm(FarmConfig(
            jobs=4, retry_base_delay=0.001, faults=plan,
        ))
        outcome = verify_source(source, farm=farm)
        # Not verified — but *inconclusive*, never refuted.
        assert not outcome.success
        assert outcome.inconclusive
        assert outcome.status == "inconclusive"
        statuses = [
            (o.success, o.inconclusive) for o in outcome.outcomes
        ]
        assert (False, True) in statuses  # the timed-out proof
        for proof in outcome.outcomes:
            if not proof.success:
                assert proof.error.startswith("inconclusive:")
        assert farm.summary().timeouts == 1
