"""Tests for the refinement (simulation) checker (§3.1.3)."""

from repro.explore.refinement_check import (
    check_refinement,
    log_equal_relation,
    log_prefix_relation,
    with_ub_conjunct,
)
from repro.lang.frontend import check_program
from repro.machine.state import ProgramState, Termination
from repro.machine.pmap import PMap
from repro.machine.translator import translate_level


def machines(source: str, low: str, high: str):
    checked = check_program(source)
    return (
        translate_level(checked.contexts[low]),
        translate_level(checked.contexts[high]),
    )


def _state(log=(), termination=None):
    return ProgramState(
        threads=PMap(), memory=PMap(), allocation=PMap(), ghosts=PMap(),
        log=log, termination=termination,
    )


class TestRelations:
    def test_log_prefix_running(self):
        assert log_prefix_relation(_state(log=(1,)), _state(log=(1, 2)))
        assert not log_prefix_relation(_state(log=(2,)), _state(log=(1,)))

    def test_log_prefix_at_normal_termination_requires_equality(self):
        done = Termination("normal")
        assert not log_prefix_relation(
            _state(log=(1,), termination=done), _state(log=(1, 2))
        )
        assert log_prefix_relation(
            _state(log=(1, 2), termination=done),
            _state(log=(1, 2), termination=done),
        )

    def test_ub_conjunct(self):
        relation = with_ub_conjunct(log_equal_relation)
        ub = Termination("undefined_behavior")
        # Low UB requires high UB (§3.2.3).
        assert not relation(_state(termination=ub), _state())
        assert relation(_state(termination=ub), _state(termination=ub))


class TestRefinementCheck:
    def test_identical_programs_refine(self):
        low, high = machines(
            "level A { void main() { print_uint32(7); } } "
            "level B { void main() { print_uint32(7); } }",
            "A", "B",
        )
        assert check_refinement(low, high).holds

    def test_different_output_fails(self):
        low, high = machines(
            "level A { void main() { print_uint32(7); } } "
            "level B { void main() { print_uint32(8); } }",
            "A", "B",
        )
        result = check_refinement(low, high)
        assert not result.holds
        assert result.counterexample is not None

    def test_stuttering_absorbs_extra_high_steps(self):
        low, high = machines(
            "level A { void main() { print_uint32(7); } } "
            "level B { var x: uint32; void main() "
            "{ x := 1; x := 2; print_uint32(7); } }",
            "A", "B",
        )
        assert check_refinement(low, high).holds

    def test_high_nondeterminism_absorbs_low(self):
        low, high = machines(
            "level A { void main() { print_uint32(1); } } "
            "level B { void main() { if (*) { print_uint32(1); } "
            "else { print_uint32(2); } } }",
            "A", "B",
        )
        assert check_refinement(low, high).holds

    def test_low_nondeterminism_needs_high_cover(self):
        low, high = machines(
            "level A { void main() { if (*) { print_uint32(1); } "
            "else { print_uint32(2); } } } "
            "level B { void main() { print_uint32(1); } }",
            "A", "B",
        )
        assert not check_refinement(low, high).holds

    def test_low_ub_fails_against_safe_high(self):
        low, high = machines(
            "level A { void main() { var a: uint32 := 1; "
            "var b: uint32 := 0; a := a / b; } } "
            "level B { void main() { } }",
            "A", "B",
        )
        assert not check_refinement(low, high).holds

    def test_product_budget(self):
        low, high = machines(
            "level A { void main() { var i: uint32 := 0; "
            "while i < 40 { i := i + 1; } } } "
            "level B { void main() { var i: uint32 := 0; "
            "while i < 40 { i := i + 1; } } }",
            "A", "B",
        )
        result = check_refinement(low, high, max_product_states=5)
        assert result.hit_budget and not result.holds

    def test_custom_relation(self):
        low, high = machines(
            "level A { void main() { print_uint32(7); } } "
            "level B { void main() { print_uint32(7); } }",
            "A", "B",
        )
        result = check_refinement(
            low, high, relation=lambda l, h: True
        )
        assert result.holds


class TestCounterexampleTraces:
    def test_trace_leads_to_failure(self):
        low, high = machines(
            "level A { var x: uint32; void main() "
            "{ x := 1; print_uint32(7); } } "
            "level B { var x: uint32; void main() "
            "{ x := 1; print_uint32(8); } }",
            "A", "B",
        )
        result = check_refinement(low, high)
        assert not result.holds
        cex = result.counterexample
        assert cex.trace, "counterexample must carry a trace"
        # The trace replays deterministically to the failing state.
        state = low.initial_state()
        for transition in cex.trace:
            state = low.next_state(state, transition)
        assert state == cex.low_state
        assert "t1:" in cex.format_trace()

    def test_no_trace_when_holds(self):
        low, high = machines(
            "level A { void main() { print_uint32(7); } } "
            "level B { void main() { print_uint32(7); } }",
            "A", "B",
        )
        assert check_refinement(low, high).counterexample is None
