"""Tests for the Armada lexer."""

import pytest

from repro.errors import LexError
from repro.lang.lexer import tokenize
from repro.lang.tokens import TokenKind


def kinds(source):
    return [t.kind for t in tokenize(source)[:-1]]


def texts(source):
    return [t.text for t in tokenize(source)[:-1]]


class TestBasicTokens:
    def test_empty_input_yields_only_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF

    def test_identifier(self):
        tokens = tokenize("best_len")
        assert tokens[0].kind is TokenKind.IDENT
        assert tokens[0].text == "best_len"

    def test_keyword(self):
        tokens = tokenize("while")
        assert tokens[0].kind is TokenKind.KEYWORD

    def test_identifier_with_prime(self):
        assert texts("x'") == ["x'"]

    def test_decimal_literal(self):
        tokens = tokenize("10000")
        assert tokens[0].kind is TokenKind.INTLIT
        assert int(tokens[0].text) == 10000

    def test_hex_literal(self):
        tokens = tokenize("0xFFFFFFFF")
        assert int(tokens[0].text, 0) == 0xFFFFFFFF

    def test_string_literal(self):
        tokens = tokenize('"s.s.globals.mutex == $me"')
        assert tokens[0].kind is TokenKind.STRINGLIT
        assert "$me" in tokens[0].text

    def test_string_escapes(self):
        tokens = tokenize(r'"a\nb\"c"')
        assert tokens[0].text == 'a\nb"c'

    def test_meta_variable(self):
        tokens = tokenize("$me $sb_empty")
        assert tokens[0].text == "$me"
        assert tokens[1].text == "$sb_empty"
        assert tokens[0].kind is TokenKind.IDENT


class TestPunctuation:
    def test_tso_bypass_assign_is_one_token(self):
        assert texts("x ::= y") == ["x", "::=", "y"]

    def test_ordinary_assign(self):
        assert texts("x := y") == ["x", ":=", "y"]

    def test_implication(self):
        assert texts("a ==> b") == ["a", "==>", "b"]

    def test_shift_operators(self):
        assert texts("a << b >> c") == ["a", "<<", "b", ">>", "c"]

    def test_comparison_greedy(self):
        assert texts("a <= b") == ["a", "<=", "b"]

    def test_logical_operators(self):
        assert texts("a && b || !c") == ["a", "&&", "b", "||", "!", "c"]


class TestComments:
    def test_line_comment(self):
        assert texts("a // comment\nb") == ["a", "b"]

    def test_block_comment(self):
        assert texts("a /* x */ b") == ["a", "b"]

    def test_block_comment_multiline(self):
        assert texts("a /* x\ny\nz */ b") == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("a /* never closed")


class TestLocations:
    def test_line_and_column_tracking(self):
        tokens = tokenize("a\n  b")
        assert tokens[0].loc.line == 1
        assert tokens[1].loc.line == 2
        assert tokens[1].loc.column == 3

    def test_filename_propagates(self):
        tokens = tokenize("a", filename="test.arm")
        assert tokens[0].loc.filename == "test.arm"


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("a ` b")

    def test_identifier_after_number(self):
        with pytest.raises(LexError):
            tokenize("123abc")

    def test_malformed_hex(self):
        with pytest.raises(LexError):
            tokenize("0x")

    def test_bad_escape(self):
        with pytest.raises(LexError):
            tokenize(r'"\q"')

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize('"never closed')
