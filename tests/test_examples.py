"""Smoke tests: every example script runs to completion.

The examples double as integration tests of the public API; each one
ends with assertions of its own, so a clean exit is a real check.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=[p.stem for p in EXAMPLES]
)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stdout + result.stderr


def test_examples_present():
    # The deliverable requires at least three runnable examples.
    assert len(EXAMPLES) >= 3
    assert any(p.stem == "quickstart" for p in EXAMPLES)
