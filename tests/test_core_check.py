"""Tests for the core-Armada (compilable subset) checker (§3.1.1)."""

import pytest

from repro.errors import CoreViolation
from repro.lang.frontend import check_level
from repro.lang.core_check import check_core


def core_ok(source: str):
    check_core(check_level("level L { " + source + " }"))


def core_rejected(source: str) -> str:
    with pytest.raises(CoreViolation) as info:
        core_ok(source)
    return str(info.value)


class TestGhostConstructs:
    def test_ghost_global_rejected(self):
        assert "ghost" in core_rejected("ghost var g: int; void main() { }")

    def test_ghost_local_rejected(self):
        core_rejected("void main() { ghost var g: int := 0; }")

    def test_mathint_rejected(self):
        core_rejected("var g: int; void main() { }")

    def test_seq_type_rejected(self):
        core_rejected("var q: seq<uint64>; void main() { }")

    def test_somehow_rejected(self):
        core_rejected("var g: uint32; void main() "
                      "{ somehow modifies g; }")

    def test_assume_rejected(self):
        core_rejected("void main() { assume true; }")

    def test_atomic_rejected(self):
        core_rejected("var g: uint32; void main() "
                      "{ atomic { g := 1; } }")

    def test_explicit_yield_rejected(self):
        core_rejected("void main() { explicit_yield { yield; } }")

    def test_tso_bypass_rejected(self):
        core_rejected("var g: uint32; void main() { g ::= 1; }")

    def test_nondet_rejected(self):
        core_rejected("void main() { if (*) { } }")

    def test_ghost_function_call_rejected(self):
        core_rejected("void main() { assert valid(1); }")

    def test_meta_variable_rejected(self):
        core_rejected("void main() { var t: uint64 := 0; "
                      "t := $me; }")

    def test_quantifier_rejected(self):
        core_rejected("void main() { assert forall i: int . i == i; }")


class TestSharedAccessLimit:
    # "Each statement may have at most one shared-location access."

    def test_two_global_reads_rejected(self):
        message = core_rejected(
            "var a: uint32; var b: uint32; void main() "
            "{ var t: uint32 := 0; t := a + b; }"
        )
        assert "shared-location" in message

    def test_read_modify_write_rejected(self):
        core_rejected("var a: uint32; void main() { a := a + 1; }")

    def test_single_access_allowed(self):
        core_ok(
            "var a: uint32; void main() "
            "{ var t: uint32 := 0; t := a; a := t + 1; }"
        )

    def test_two_derefs_rejected(self):
        core_rejected(
            "var a: uint32; void main() {"
            " var p: ptr<uint32> := null; var q: ptr<uint32> := null;"
            " p := &a; q := &a; *p := *q; }"
        )

    def test_address_of_is_not_an_access(self):
        core_ok(
            "var a: uint32; void main() "
            "{ var p: ptr<uint32> := null; p := &a; }"
        )

    def test_address_taken_local_counts_as_shared(self):
        core_rejected(
            "void main() { var a: uint32 := 0; var b: uint32 := 0; "
            "var p: ptr<uint32> := null; p := &a; b := a + a; }"
        )

    def test_array_element_through_local_index(self):
        core_ok(
            "var arr: uint32[4]; void main() "
            "{ var i: uint32 := 0; arr[i] := 7; }"
        )


class TestAcceptedCore:
    def test_full_core_program(self):
        core_ok(
            "struct S { var f: uint32; } var s: S; var mu: uint64; "
            "void worker(n: uint32) { var t: uint32 := 0; "
            "lock(&mu); t := s.f; s.f := t + n; unlock(&mu); } "
            "void main() { var h: uint64 := 0; initialize_mutex(&mu); "
            "h := create_thread worker(3); join h; }"
        )

    def test_malloc_dealloc(self):
        core_ok(
            "void main() { var p: ptr<uint32> := null; "
            "p := malloc(uint32); *p := 4; dealloc p; }"
        )

    def test_control_flow(self):
        core_ok(
            "void main() { var i: uint32 := 0; "
            "while i < 10 { if i == 5 { break; } "
            "i := i + 1; continue; } }"
        )
