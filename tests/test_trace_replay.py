"""Counterexample traces must replay, step by step, to the state they
accuse.

Every diagnostic the explorer or the refinement checker emits carries a
transition sequence; these tests drive that sequence back through
``machine.next_state`` from the initial state and require it to land
exactly on the recorded violating state.  A trace that does not replay
is worse than no trace — it sends the user debugging a path that does
not exist — so the property is checked across the three counterexample
kinds (invariant violations, UB outcomes, refinement counterexamples)
and across program shapes: toy levels, the TSO litmus patterns, and the
paper's case-study implementation levels.
"""

import pytest

from repro.casestudies import load
from repro.explore.explorer import Explorer
from repro.explore.refinement_check import check_refinement
from repro.lang.frontend import check_level, check_program
from repro.machine.state import TERM_UB
from repro.machine.translator import translate_level


def machine_for(source: str):
    return translate_level(check_level("level L { " + source + " }"))


def _replay(machine, trace):
    state = machine.initial_state()
    for transition in trace:
        state = machine.next_state(state, transition)
    return state


def _print_regs(*names: str) -> str:
    parts = []
    for i, name in enumerate(names):
        parts.append(f"var s{i}: uint32 := 0; s{i} := {name}; "
                     f"print_uint32(s{i});")
    return " ".join(parts)


LITMUS = {
    "SB": (
        "var x: uint32; var y: uint32; var r1: uint32; var r2: uint32; "
        "void t1() { x := 1; r1 := y; fence(); } "
        "void main() { var a: uint64 := 0; a := create_thread t1(); "
        "y := 1; r2 := x; join a; fence(); "
        + _print_regs("r1", "r2") + " }"
    ),
    "MP": (
        "var data: uint32; var flag: uint32; "
        "var rf: uint32; var rd: uint32; "
        "void t1() { data := 1; flag := 1; } "
        "void main() { var a: uint64 := 0; a := create_thread t1(); "
        "rf := flag; rd := data; join a; fence(); "
        + _print_regs("rf", "rd") + " }"
    ),
}


class TestInvariantViolationReplay:
    @pytest.mark.parametrize("shape", sorted(LITMUS))
    def test_litmus_violations_replay(self, shape):
        machine = machine_for(LITMUS[shape])
        # "The log stays empty" is falsified on every completed run, so
        # each litmus shape yields violations with non-trivial traces.
        result = Explorer(machine).explore(
            invariants={"log-empty": lambda s: len(s.log) == 0}
        )
        assert result.violations
        for violation in result.violations:
            assert len(violation.state.log) > 0
            assert _replay(machine, violation.trace) == violation.state

    @pytest.mark.parametrize("study_name", ["tsp", "barrier"])
    def test_case_study_violations_replay(self, study_name):
        study = load(study_name)
        checked = check_program(study.source, f"<{study.name}>")
        level = checked.program.levels[0].name
        machine = translate_level(checked.contexts[level])
        # Falsified as soon as the implementation spawns its first
        # worker; a small budget keeps the sweep fast — violations found
        # before truncation still carry complete traces.
        explorer = Explorer(machine, max_states=2_000)
        result = explorer.explore(
            invariants={"single-threaded": lambda s: s.next_tid <= 1}
        )
        assert result.violations
        for violation in result.violations[:10]:
            replayed = _replay(machine, violation.trace)
            assert replayed == violation.state
            assert replayed.next_tid > 1

    def test_shortest_violation_breaks_at_its_last_step(self):
        machine = machine_for(
            "void main() { print_uint32(1); print_uint32(2); }"
        )
        result = Explorer(machine).explore(
            invariants={"log-empty": lambda s: len(s.log) == 0}
        )
        assert result.violations
        # BFS traces are shortest, so along the shortest violation's
        # path the invariant holds at every proper prefix and breaks
        # exactly at the final state.
        shortest = min(result.violations, key=lambda v: len(v.trace))
        state = machine.initial_state()
        for transition in shortest.trace[:-1]:
            assert len(state.log) == 0
            state = machine.next_state(state, transition)
        state = machine.next_state(state, shortest.trace[-1])
        assert state == shortest.state
        assert len(state.log) > 0


class TestUBReplay:
    def test_concurrent_div_by_zero_replays(self):
        machine = machine_for(
            "var d: uint32; var r: uint32; "
            "void t1() { d := 1; } "
            "void main() { var a: uint64 := 0; "
            "a := create_thread t1(); r := 5 / d; join a; }"
        )
        result = Explorer(machine).explore()
        assert result.has_ub  # the race where t1 has not stored yet
        assert len(result.ub_traces) == len(result.ub_reasons)
        for reason, trace in zip(result.ub_reasons, result.ub_traces):
            final = _replay(machine, trace)
            assert final.termination is not None
            assert final.termination.kind == TERM_UB
            assert final.termination.detail == reason

    @pytest.mark.parametrize("study_name", ["tsp"])
    def test_case_study_stays_ub_free(self, study_name):
        # The case studies are UB-free; the replay property is vacuous
        # there, and this pins that it stays vacuous.
        study = load(study_name)
        checked = check_program(study.source, f"<{study.name}>")
        level = checked.program.levels[0].name
        machine = translate_level(checked.contexts[level])
        result = Explorer(machine, max_states=200_000).explore()
        assert not result.has_ub


class TestRefinementCounterexampleReplay:
    def test_unsimulatable_step_replays(self):
        low = machine_for("void main() { print_uint32(2); }")
        high = machine_for("void main() { print_uint32(1); }")
        result = check_refinement(low, high)
        assert not result.holds
        cex = result.counterexample
        assert cex is not None and cex.trace
        # The trace includes the unsimulatable transition itself, so it
        # replays exactly onto the recorded stuck low-level state.
        assert _replay(low, cex.trace) == cex.low_state

    def test_weak_memory_counterexample_replays(self):
        # Low exhibits the SB weak outcome; a sequentially-consistent
        # high level cannot simulate it, and the reported trace must
        # replay through the store-buffer steps that produced it.
        low = machine_for(LITMUS["SB"])
        high = machine_for(
            "void main() { " + _print_regs("1", "1") + " }"
        )
        result = check_refinement(low, high)
        assert not result.holds
        cex = result.counterexample
        assert cex is not None and cex.trace
        assert _replay(low, cex.trace) == cex.low_state
