"""Tests for state-machine translation and state structures."""

import pytest

from repro.errors import TranslationError
from repro.lang.frontend import check_level
from repro.machine.pmap import PMap
from repro.machine.state import ProgramState, ThreadState, Frame
from repro.machine.steps import (
    AssertStep,
    AssignStep,
    AssumeStep,
    BranchStep,
    CallStep,
    CreateThreadStep,
    ExternStep,
    JoinStep,
    MallocStep,
    ReturnStep,
    SomehowStep,
)
from repro.machine.translator import translate_level
from repro.machine.values import Location, Root


def machine_for(source: str):
    return translate_level(check_level("level L { " + source + " }"))


class TestPMap:
    def test_set_returns_new(self):
        a = PMap()
        b = a.set("k", 1)
        assert "k" not in a and b["k"] == 1

    def test_set_same_value_returns_self(self):
        a = PMap({"k": 1})
        assert a.set("k", 1) is a

    def test_hash_equals_structural(self):
        a = PMap({"x": 1, "y": 2})
        b = PMap({"y": 2}).set("x", 1)
        assert a == b and hash(a) == hash(b)

    def test_remove(self):
        a = PMap({"x": 1})
        assert len(a.remove("x")) == 0
        assert a.remove("zzz") is a

    def test_set_many(self):
        a = PMap().set_many({"a": 1, "b": 2})
        assert dict(a.items()) == {"a": 1, "b": 2}

    def test_incremental_hash_matches_fresh_build(self):
        # The hash accumulator is maintained incrementally across
        # set/remove/overwrite; any derivation chain reaching the same
        # contents must hash identically to a map built in one shot.
        a = PMap()
        for i in range(20):
            a = a.set(i, i * i)
        a = a.remove(3).remove(17).set(5, -1).set(5, -2)
        fresh = PMap(
            {i: i * i for i in range(20) if i not in (3, 5, 17)}
        ).set(5, -2)
        assert a == fresh
        assert hash(a) == hash(fresh)

    def test_set_many_hash_matches_fresh_build(self):
        derived = PMap({"a": 1}).set_many({"b": 2, "a": 3})
        assert hash(derived) == hash(PMap({"a": 3, "b": 2}))

    def test_hash_differs_by_size(self):
        # XOR-cancelling entries must not collide maps of different
        # sizes: the length is mixed into the final hash.
        a = PMap({"x": 1})
        b = PMap({"x": 1, "y": 2})
        assert hash(a) != hash(b)


class TestStateHashing:
    def _state(self, log=()):
        loc = Location(Root("global", "x"))
        frame = Frame("m", 1, PMap({"x": 0}))
        thread = ThreadState(tid=1, pc="m#0", frames=(frame,))
        return ProgramState(
            threads=PMap({1: thread}),
            memory=PMap({loc: 0}),
            allocation=PMap(),
            ghosts=PMap(),
            log=log,
        )

    def test_equal_states_hash_equal(self):
        a, b = self._state(), self._state()
        assert a == b
        assert hash(a) == hash(b)

    def test_replace_recomputes_cached_hash(self):
        import dataclasses

        state = self._state()
        hash(state)  # populate the cache
        replaced = dataclasses.replace(state, log=(1,))
        assert hash(replaced) == hash(self._state(log=(1,)))
        assert replaced != state

    def test_hash_stable_across_calls(self):
        state = self._state()
        assert hash(state) == hash(state)


class TestThreadState:
    def _thread(self):
        frame = Frame("m", 1, PMap({"x": 0}))
        return ThreadState(tid=1, pc="m#0", frames=(frame,))

    def test_store_buffer_fifo(self):
        t = self._thread()
        loc_a = Location(Root("global", "a"))
        loc_b = Location(Root("global", "b"))
        t = t.push_buffer(loc_a, 1).push_buffer(loc_b, 2)
        t, loc, val = t.pop_buffer()
        assert (loc, val) == (loc_a, 1)
        t, loc, val = t.pop_buffer()
        assert (loc, val) == (loc_b, 2)
        assert t.sb_empty

    def test_set_local(self):
        t = self._thread().set_local("x", 42)
        assert t.top.locals["x"] == 42

    def test_terminated(self):
        assert self._thread().with_pc(None).terminated


class TestLocalView:
    def test_youngest_buffered_write_wins(self):
        loc = Location(Root("global", "g"))
        frame = Frame("m", 1, PMap())
        thread = ThreadState(1, "m#0", (frame,))
        thread = thread.push_buffer(loc, 10).push_buffer(loc, 20)
        state = ProgramState(
            threads=PMap({1: thread}),
            memory=PMap({loc: 0}),
            allocation=PMap(),
            ghosts=PMap(),
        )
        assert state.local_view(1, loc) == 20

    def test_other_thread_sees_memory(self):
        loc = Location(Root("global", "g"))
        writer = ThreadState(1, "m#0", (Frame("m", 1, PMap()),))
        writer = writer.push_buffer(loc, 10)
        reader = ThreadState(2, "m#0", (Frame("m", 2, PMap()),))
        state = ProgramState(
            threads=PMap({1: writer, 2: reader}),
            memory=PMap({loc: 0}),
            allocation=PMap(),
            ghosts=PMap(),
        )
        assert state.local_view(2, loc) == 0
        assert state.local_view(1, loc) == 10

    def test_drain_moves_oldest_to_memory(self):
        loc = Location(Root("global", "g"))
        thread = ThreadState(1, "m#0", (Frame("m", 1, PMap()),))
        thread = thread.push_buffer(loc, 10).push_buffer(loc, 20)
        state = ProgramState(
            threads=PMap({1: thread}),
            memory=PMap({loc: 0}),
            allocation=PMap(),
            ghosts=PMap(),
        )
        state = state.drain_one(1)
        assert state.memory[loc] == 10
        state = state.drain_one(1)
        assert state.memory[loc] == 20


class TestTranslation:
    def test_pcs_are_program_specific(self):
        machine = machine_for(
            "void main() { var x: uint32 := 0; x := x + 1; }"
        )
        assert all(pc.startswith("main#") for pc in machine.pcs)

    def test_branch_yields_two_steps(self):
        machine = machine_for(
            "void main() { var x: uint32 := 0; if x > 0 { x := 1; } }"
        )
        guards = [
            s for s in machine.all_steps() if isinstance(s, BranchStep)
        ]
        assert len(guards) == 2
        assert {g.when for g in guards} == {True, False}

    def test_while_loops_back(self):
        machine = machine_for(
            "void main() { var i: uint32 := 0; "
            "while i < 3 { i := i + 1; } }"
        )
        guard_pc = next(
            s.pc for s in machine.all_steps() if isinstance(s, BranchStep)
        )
        body_steps = [
            s for s in machine.all_steps()
            if isinstance(s, AssignStep) and s.target == guard_pc
        ]
        assert body_steps, "loop body must jump back to the guard"

    def test_statement_kinds(self):
        machine = machine_for(
            "var mu: uint64; var g: uint32; "
            "void helper() { } "
            "void main() { var t: uint64 := 0; var p: ptr<uint32> := null;"
            " assert true; assume true; "
            "somehow modifies g; lock(&mu); helper(); "
            "t := create_thread helper(); join t; "
            "p := malloc(uint32); dealloc p; }"
        )
        kinds = {type(s).__name__ for s in machine.all_steps()}
        assert {
            "AssertStep", "AssumeStep", "SomehowStep", "ExternStep",
            "CallStep", "CreateThreadStep", "JoinStep", "MallocStep",
            "DeallocStep", "ReturnStep",
        } <= kinds

    def test_atomic_block_pcs_non_yieldable(self):
        machine = machine_for(
            "var x: uint32; void main() "
            "{ atomic { x := 1; x := 2; } x := 3; }"
        )
        yieldable = {
            pc: info.yieldable for pc, info in machine.pcs.items()
        }
        assert False in yieldable.values()
        assert True in yieldable.values()

    def test_explicit_yield_restores_yieldability(self):
        machine = machine_for(
            "var mu: uint64; void main() { explicit_yield { "
            "lock(&mu); unlock(&mu); yield; lock(&mu); unlock(&mu); } }"
        )
        # The yield point splits the region: at least one interior PC is
        # yieldable again.
        interior = [
            info for info in machine.pcs.values() if not info.yieldable
        ]
        yield_points = [
            info for info in machine.pcs.values() if info.yieldable
        ]
        assert interior and yield_points

    def test_label_attaches_to_step(self):
        machine = machine_for(
            "var x: uint32; void main() { label here: x := 1; }"
        )
        labeled = [s for s in machine.all_steps() if s.label == "here"]
        assert len(labeled) == 1

    def test_call_result_through_temp_for_complex_lhs(self):
        machine = machine_for(
            "var arr: uint32[2]; uint32 f() { return 7; } "
            "void main() { arr[1] := f(); }"
        )
        calls = [s for s in machine.all_steps()
                 if isinstance(s, CallStep)]
        assert calls[0].result_local.startswith("$ret")

    def test_direct_result_local_for_simple_lhs(self):
        machine = machine_for(
            "uint32 f() { return 7; } "
            "void main() { var x: uint32 := 0; x := f(); }"
        )
        call = next(s for s in machine.all_steps()
                    if isinstance(s, CallStep))
        assert call.result_local == "x"

    def test_missing_main_rejected(self):
        with pytest.raises(TranslationError):
            machine_for("void helper() { }")

    def test_break_outside_loop_rejected(self):
        with pytest.raises(TranslationError):
            machine_for("void main() { break; }")

    def test_newframe_locals_recorded(self):
        machine = machine_for(
            "void main() { var a: uint32; var b: uint32 := 0; }"
        )
        names = [n for n, _ in machine.newframe_locals["main"]]
        assert "a" in names and "b" in names

    def test_memory_locals_recorded(self):
        machine = machine_for(
            "void main() { var a: uint32 := 0; "
            "var p: ptr<uint32> := null; p := &a; }"
        )
        assert machine.memory_locals["main"] == ["a"]

    def test_initial_state_globals(self):
        machine = machine_for(
            "var x: uint32 := 9; ghost var g: int := 5; void main() { }"
        )
        state = machine.initial_state()
        loc = Location(Root("global", "x"))
        assert state.memory[loc] == 9
        assert state.ghosts["g"] == 5
        assert len(state.threads) == 1

    def test_step_count_metric(self):
        machine = machine_for("void main() { var x: uint32 := 0; }")
        assert machine.step_count() >= 2  # assignment + return
