"""Tests for the verification farm: scheduling, caching, equivalence.

The load-bearing property is *mode equivalence*: sequential, threaded,
process-pool, and cached discharge of a full case-study chain must
produce identical per-lemma verdicts and the same ``ChainOutcome``
success — parallelism and incrementality are pure optimisations.
"""

import pathlib
import pickle

import pytest

from repro.casestudies import load, run_case_study
from repro.farm import (
    CACHE_HIT,
    JOB_FINISHED,
    JOB_QUEUED,
    POOL_FALLBACK,
    FarmConfig,
    ProofCache,
    VerificationFarm,
    lemma_job_key,
    lemma_jobs,
    structural_hash,
)
from repro.proofs.artifacts import (
    Lemma,
    ObligationDescriptor,
    ProofScript,
    proved,
)
from repro.verifier.prover import ProverConfig, Verdict


def snapshot(outcome):
    """Byte-comparable view of every per-lemma verdict in a chain."""
    rows = []
    for proof_outcome in outcome.outcomes:
        lemmas = (
            proof_outcome.script.lemmas
            if proof_outcome.script is not None else []
        )
        rows.append(
            (
                proof_outcome.proof_name,
                proof_outcome.success,
                tuple(
                    (lemma.name, repr(lemma.verdict)) for lemma in lemmas
                ),
            )
        )
    return rows


def make_script(body="assert x > 0;", counter=None):
    """A one-obligation script whose obligation counts its calls."""
    script = ProofScript("P", "weakening", "Low", "High")
    calls = counter if counter is not None else []

    def obligation():
        calls.append(1)
        return proved()

    script.add(Lemma("L1", "claims something", [body],
                     obligation=obligation))
    return script, calls


class TestStructuralHash:
    def test_stable(self):
        assert structural_hash("a", ("b", 1)) == \
            structural_hash("a", ("b", 1))

    def test_no_concatenation_collisions(self):
        assert structural_hash("ab") != structural_hash("a", "b")
        assert structural_hash(("ab",)) != structural_hash(("a", "b"))

    def test_type_tagged(self):
        assert structural_hash(1) != structural_hash("1")
        assert structural_hash(True) != structural_hash(1)


class TestDescriptors:
    def test_descriptor_is_picklable_and_hashable(self):
        lemma = Lemma("L", "stmt", ["b1"], customization=["c1"])
        descriptor = lemma.descriptor()
        assert hash(descriptor) == hash(pickle.loads(
            pickle.dumps(descriptor)
        ))
        assert descriptor == ObligationDescriptor.of(lemma)

    def test_fingerprint_tracks_content(self):
        base = Lemma("L", "stmt", ["b1"]).fingerprint()
        assert Lemma("L", "stmt", ["b1"]).fingerprint() == base
        assert Lemma("L", "stmt", ["b2"]).fingerprint() != base
        assert Lemma("L", "stmt2", ["b1"]).fingerprint() != base
        assert Lemma("L2", "stmt", ["b1"]).fingerprint() != base
        custom = Lemma("L", "stmt", ["b1"])
        custom.customization.append("assert extra;")
        assert custom.fingerprint() != base


class TestScheduler:
    def test_stable_job_keys(self):
        script, _ = make_script()
        first = [j.key for j in lemma_jobs(script, "pf")]
        second = [j.key for j in lemma_jobs(script, "pf")]
        assert first == second

    def test_definitional_lemmas_not_scheduled(self):
        script, _ = make_script()
        script.definitional("Defs", "datatypes", ["datatype T"])
        assert len(lemma_jobs(script, "pf")) == 1

    def test_key_depends_on_prover_fingerprint(self):
        script, _ = make_script()
        [a] = lemma_jobs(script, ProverConfig().fingerprint())
        [b] = lemma_jobs(
            script, ProverConfig(random_samples=64).fingerprint()
        )
        assert a.key != b.key


class TestProofCache:
    def test_hit_after_rerun(self, tmp_path):
        counter = []
        farm = VerificationFarm(FarmConfig(cache_dir=tmp_path / "c"))
        script1, _ = make_script(counter=counter)
        farm.discharge(lemma_jobs(script1, "pf"))
        assert counter == [1]
        assert script1.lemmas[0].verdict.ok

        script2, _ = make_script(counter=counter)
        farm2 = VerificationFarm(FarmConfig(cache_dir=tmp_path / "c"))
        farm2.discharge(lemma_jobs(script2, "pf"))
        assert counter == [1]  # obligation never re-ran
        assert repr(script2.lemmas[0].verdict) == \
            repr(script1.lemmas[0].verdict)
        assert len(farm2.events.events(CACHE_HIT)) == 1

    def test_invalidated_by_body_change(self, tmp_path):
        counter = []
        cache_dir = tmp_path / "c"
        script1, _ = make_script("assert x > 0;", counter)
        VerificationFarm(FarmConfig(cache_dir=cache_dir)).discharge(
            lemma_jobs(script1, "pf")
        )
        script2, _ = make_script("assert x >= 1;", counter)
        farm = VerificationFarm(FarmConfig(cache_dir=cache_dir))
        farm.discharge(lemma_jobs(script2, "pf"))
        assert counter == [1, 1]
        assert not farm.events.events(CACHE_HIT)

    def test_invalidated_by_customization(self, tmp_path):
        counter = []
        cache_dir = tmp_path / "c"
        script1, _ = make_script(counter=counter)
        VerificationFarm(FarmConfig(cache_dir=cache_dir)).discharge(
            lemma_jobs(script1, "pf")
        )
        script2, _ = make_script(counter=counter)
        script2.lemmas[0].customization.append("assert Extra(x);")
        VerificationFarm(FarmConfig(cache_dir=cache_dir)).discharge(
            lemma_jobs(script2, "pf")
        )
        assert counter == [1, 1]

    def test_invalidated_by_prover_config_change(self, tmp_path):
        counter = []
        cache_dir = tmp_path / "c"
        script1, _ = make_script(counter=counter)
        VerificationFarm(FarmConfig(cache_dir=cache_dir)).discharge(
            lemma_jobs(script1, ProverConfig().fingerprint())
        )
        script2, _ = make_script(counter=counter)
        VerificationFarm(FarmConfig(cache_dir=cache_dir)).discharge(
            lemma_jobs(
                script2,
                ProverConfig(exhaustive_bits=3).fingerprint(),
            )
        )
        assert counter == [1, 1]

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ProofCache(tmp_path / "c")
        key = lemma_job_key(Lemma("L", "s", ["b"]), "pf")
        assert cache.put(key, Verdict("proved"))
        path = cache._path(key)
        path.write_bytes(b"not a pickle")
        assert cache.get(key) is None
        assert not path.exists()  # dropped
        assert cache.misses == 1

    def test_len_counts_entries(self, tmp_path):
        cache = ProofCache(tmp_path / "c")
        assert len(cache) == 0
        cache.put("ab" + "0" * 62, Verdict("proved"))
        cache.put("cd" + "0" * 62, Verdict("refuted"))
        assert len(cache) == 2


class TestEvents:
    def test_lifecycle_events(self):
        farm = VerificationFarm()
        script, _ = make_script()
        farm.discharge(lemma_jobs(script, "pf"))
        assert len(farm.events.events(JOB_QUEUED)) == 1
        assert len(farm.events.events(JOB_FINISHED)) == 1
        summary = farm.summary()
        assert summary.jobs == 1
        assert summary.executed == 1
        assert summary.cache_hits == 0
        assert summary.max_queue_depth >= 1

    def test_summary_line_mentions_mode(self):
        farm = VerificationFarm(FarmConfig(jobs=3))
        assert "[thread x3]" in farm.summary_line()


class TestProcessFallback:
    def test_closures_fall_back_inline(self):
        farm = VerificationFarm(FarmConfig(jobs=2, mode="process"))
        script, calls = make_script()
        script.add(
            Lemma("L2", "also claims", ["b2"],
                  obligation=lambda: proved())
        )
        farm.discharge(lemma_jobs(script, "pf"))
        assert calls == [1]
        assert script.lemmas[0].verdict.ok
        assert script.lemmas[1].verdict.ok
        assert len(farm.events.events(POOL_FALLBACK)) == 2


class TestModeEquivalence:
    """Sequential, threaded, process, and cached runs of a full
    case-study chain agree byte-for-byte on per-lemma verdicts."""

    @pytest.fixture(scope="class")
    def study(self):
        return load("tsp")

    @pytest.fixture(scope="class")
    def sequential(self, study):
        return run_case_study(study)

    def test_threaded_equivalent(self, study, sequential):
        farm = VerificationFarm(FarmConfig(jobs=4))
        report = run_case_study(study, farm=farm)
        assert report.outcome.success == sequential.outcome.success
        assert snapshot(report.outcome) == snapshot(sequential.outcome)

    def test_process_equivalent(self, study, sequential):
        farm = VerificationFarm(FarmConfig(jobs=2, mode="process"))
        report = run_case_study(study, farm=farm)
        assert report.outcome.success == sequential.outcome.success
        assert snapshot(report.outcome) == snapshot(sequential.outcome)

    def test_cached_equivalent_and_hit_rate(
        self, study, sequential, tmp_path
    ):
        cache_dir = tmp_path / "proof-cache"
        cold_farm = VerificationFarm(FarmConfig(cache_dir=cache_dir))
        cold = run_case_study(study, farm=cold_farm)
        assert snapshot(cold.outcome) == snapshot(sequential.outcome)

        warm_farm = VerificationFarm(FarmConfig(cache_dir=cache_dir))
        warm = run_case_study(study, farm=warm_farm)
        assert warm.outcome.success == sequential.outcome.success
        assert snapshot(warm.outcome) == snapshot(sequential.outcome)
        summary = warm_farm.summary()
        # Only the (uncacheable) whole-program checks may re-execute:
        # every lemma obligation must come from the cache — comfortably
        # above the >= 90% incrementality bar.
        executed = [
            event.label
            for event in warm_farm.events.events(JOB_FINISHED)
        ]
        assert all(
            "WholeProgramRefinement" in label for label in executed
        )
        lemma_obligations = summary.jobs - len(executed)
        assert lemma_obligations > 0
        assert summary.cache_hits == lemma_obligations
        assert summary.cache_hits / lemma_obligations >= 0.9

    def test_threaded_cached_combination(self, study, sequential,
                                         tmp_path):
        cache_dir = tmp_path / "proof-cache"
        run_case_study(
            study,
            farm=VerificationFarm(FarmConfig(jobs=4,
                                             cache_dir=cache_dir)),
        )
        farm = VerificationFarm(FarmConfig(jobs=4, cache_dir=cache_dir))
        report = run_case_study(study, farm=farm)
        assert snapshot(report.outcome) == snapshot(sequential.outcome)
        assert farm.summary().cache_hits > 0


class TestMachineFingerprint:
    """Cache keys must track whole-machine semantics, not just lemma
    text: reachability-based obligations depend on global initial
    values that never appear in a lemma body."""

    @pytest.fixture(scope="class")
    def source(self):
        path = (pathlib.Path(__file__).parent.parent
                / "examples" / "running_example.arm")
        return path.read_text()

    def _verify(self, source, cache_dir):
        from repro.proofs.engine import verify_source

        farm = VerificationFarm(FarmConfig(cache_dir=cache_dir))
        outcome = verify_source(source, farm=farm)
        assert outcome.success
        return farm.summary()

    def test_semantic_edit_invalidates(self, source, tmp_path):
        cache_dir = tmp_path / "proof-cache"
        cold = self._verify(source, cache_dir)
        assert cold.cache_hits == 0

        warm = self._verify(source, cache_dir)
        assert warm.cache_hits > 0

        # Changing a global initializer changes the reachable-state
        # space every path/ownership obligation quantifies over, even
        # though no lemma statement or body mentions the literal.
        edited = source.replace(
            "best_len: uint32 := 255", "best_len: uint32 := 254"
        )
        assert edited != source
        after_edit = self._verify(edited, cache_dir)
        assert after_edit.cache_hits == 0

    def test_formatting_edit_still_hits(self, source, tmp_path):
        cache_dir = tmp_path / "proof-cache"
        self._verify(source, cache_dir)
        commented = "// formatting-only change\n" + source
        summary = self._verify(commented, cache_dir)
        assert summary.cache_hits > 0
