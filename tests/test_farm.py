"""Tests for the verification farm: scheduling, caching, equivalence.

The load-bearing property is *mode equivalence*: sequential, threaded,
process-pool, and cached discharge of a full case-study chain must
produce identical per-lemma verdicts and the same ``ChainOutcome``
success — parallelism and incrementality are pure optimisations.
"""

import pathlib
import pickle

import pytest

from repro.casestudies import load, run_case_study
from repro.farm import (
    CACHE_HIT,
    JOB_FINISHED,
    JOB_QUEUED,
    POOL_FALLBACK,
    FarmConfig,
    ProofCache,
    VerificationFarm,
    lemma_job_key,
    lemma_jobs,
    structural_hash,
)
from repro.proofs.artifacts import (
    Lemma,
    ObligationDescriptor,
    ProofScript,
    proved,
)
from repro.verifier.prover import ProverConfig, Verdict


def snapshot(outcome):
    """Byte-comparable view of every per-lemma verdict in a chain."""
    rows = []
    for proof_outcome in outcome.outcomes:
        lemmas = (
            proof_outcome.script.lemmas
            if proof_outcome.script is not None else []
        )
        rows.append(
            (
                proof_outcome.proof_name,
                proof_outcome.success,
                tuple(
                    (lemma.name, repr(lemma.verdict)) for lemma in lemmas
                ),
            )
        )
    return rows


def make_script(body="assert x > 0;", counter=None):
    """A one-obligation script whose obligation counts its calls."""
    script = ProofScript("P", "weakening", "Low", "High")
    calls = counter if counter is not None else []

    def obligation():
        calls.append(1)
        return proved()

    script.add(Lemma("L1", "claims something", [body],
                     obligation=obligation))
    return script, calls


class TestStructuralHash:
    def test_stable(self):
        assert structural_hash("a", ("b", 1)) == \
            structural_hash("a", ("b", 1))

    def test_no_concatenation_collisions(self):
        assert structural_hash("ab") != structural_hash("a", "b")
        assert structural_hash(("ab",)) != structural_hash(("a", "b"))

    def test_type_tagged(self):
        assert structural_hash(1) != structural_hash("1")
        assert structural_hash(True) != structural_hash(1)


class TestDescriptors:
    def test_descriptor_is_picklable_and_hashable(self):
        lemma = Lemma("L", "stmt", ["b1"], customization=["c1"])
        descriptor = lemma.descriptor()
        assert hash(descriptor) == hash(pickle.loads(
            pickle.dumps(descriptor)
        ))
        assert descriptor == ObligationDescriptor.of(lemma)

    def test_fingerprint_tracks_content(self):
        base = Lemma("L", "stmt", ["b1"]).fingerprint()
        assert Lemma("L", "stmt", ["b1"]).fingerprint() == base
        assert Lemma("L", "stmt", ["b2"]).fingerprint() != base
        assert Lemma("L", "stmt2", ["b1"]).fingerprint() != base
        assert Lemma("L2", "stmt", ["b1"]).fingerprint() != base
        custom = Lemma("L", "stmt", ["b1"])
        custom.customization.append("assert extra;")
        assert custom.fingerprint() != base


class TestScheduler:
    def test_stable_job_keys(self):
        script, _ = make_script()
        first = [j.key for j in lemma_jobs(script, "pf")]
        second = [j.key for j in lemma_jobs(script, "pf")]
        assert first == second

    def test_definitional_lemmas_not_scheduled(self):
        script, _ = make_script()
        script.definitional("Defs", "datatypes", ["datatype T"])
        assert len(lemma_jobs(script, "pf")) == 1

    def test_key_depends_on_prover_fingerprint(self):
        script, _ = make_script()
        [a] = lemma_jobs(script, ProverConfig().fingerprint())
        [b] = lemma_jobs(
            script, ProverConfig(random_samples=64).fingerprint()
        )
        assert a.key != b.key


class TestProofCache:
    def test_hit_after_rerun(self, tmp_path):
        counter = []
        farm = VerificationFarm(FarmConfig(cache_dir=tmp_path / "c"))
        script1, _ = make_script(counter=counter)
        farm.discharge(lemma_jobs(script1, "pf"))
        assert counter == [1]
        assert script1.lemmas[0].verdict.ok

        script2, _ = make_script(counter=counter)
        farm2 = VerificationFarm(FarmConfig(cache_dir=tmp_path / "c"))
        farm2.discharge(lemma_jobs(script2, "pf"))
        assert counter == [1]  # obligation never re-ran
        assert repr(script2.lemmas[0].verdict) == \
            repr(script1.lemmas[0].verdict)
        assert len(farm2.events.events(CACHE_HIT)) == 1

    def test_invalidated_by_body_change(self, tmp_path):
        counter = []
        cache_dir = tmp_path / "c"
        script1, _ = make_script("assert x > 0;", counter)
        VerificationFarm(FarmConfig(cache_dir=cache_dir)).discharge(
            lemma_jobs(script1, "pf")
        )
        script2, _ = make_script("assert x >= 1;", counter)
        farm = VerificationFarm(FarmConfig(cache_dir=cache_dir))
        farm.discharge(lemma_jobs(script2, "pf"))
        assert counter == [1, 1]
        assert not farm.events.events(CACHE_HIT)

    def test_invalidated_by_customization(self, tmp_path):
        counter = []
        cache_dir = tmp_path / "c"
        script1, _ = make_script(counter=counter)
        VerificationFarm(FarmConfig(cache_dir=cache_dir)).discharge(
            lemma_jobs(script1, "pf")
        )
        script2, _ = make_script(counter=counter)
        script2.lemmas[0].customization.append("assert Extra(x);")
        VerificationFarm(FarmConfig(cache_dir=cache_dir)).discharge(
            lemma_jobs(script2, "pf")
        )
        assert counter == [1, 1]

    def test_invalidated_by_prover_config_change(self, tmp_path):
        counter = []
        cache_dir = tmp_path / "c"
        script1, _ = make_script(counter=counter)
        VerificationFarm(FarmConfig(cache_dir=cache_dir)).discharge(
            lemma_jobs(script1, ProverConfig().fingerprint())
        )
        script2, _ = make_script(counter=counter)
        VerificationFarm(FarmConfig(cache_dir=cache_dir)).discharge(
            lemma_jobs(
                script2,
                ProverConfig(exhaustive_bits=3).fingerprint(),
            )
        )
        assert counter == [1, 1]

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ProofCache(tmp_path / "c")
        key = lemma_job_key(Lemma("L", "s", ["b"]), "pf")
        assert cache.put(key, Verdict("proved"))
        path = cache._path(key)
        path.write_bytes(b"not a pickle")
        assert cache.get(key) is None
        assert not path.exists()  # dropped
        assert cache.misses == 1

    def test_len_counts_entries(self, tmp_path):
        cache = ProofCache(tmp_path / "c")
        assert len(cache) == 0
        cache.put("ab" + "0" * 62, Verdict("proved"))
        cache.put("cd" + "0" * 62, Verdict("refuted"))
        assert len(cache) == 2


class TestEvents:
    def test_lifecycle_events(self):
        farm = VerificationFarm()
        script, _ = make_script()
        farm.discharge(lemma_jobs(script, "pf"))
        assert len(farm.events.events(JOB_QUEUED)) == 1
        assert len(farm.events.events(JOB_FINISHED)) == 1
        summary = farm.summary()
        assert summary.jobs == 1
        assert summary.executed == 1
        assert summary.cache_hits == 0
        assert summary.max_queue_depth >= 1

    def test_summary_line_mentions_mode(self):
        farm = VerificationFarm(FarmConfig(jobs=3))
        assert "[thread x3]" in farm.summary_line()


class TestProcessFallback:
    def test_closures_fall_back_inline(self):
        farm = VerificationFarm(FarmConfig(jobs=2, mode="process"))
        script, calls = make_script()
        script.add(
            Lemma("L2", "also claims", ["b2"],
                  obligation=lambda: proved())
        )
        farm.discharge(lemma_jobs(script, "pf"))
        assert calls == [1]
        assert script.lemmas[0].verdict.ok
        assert script.lemmas[1].verdict.ok
        assert len(farm.events.events(POOL_FALLBACK)) == 2


class TestModeEquivalence:
    """Sequential, threaded, process, and cached runs of a full
    case-study chain agree byte-for-byte on per-lemma verdicts."""

    @pytest.fixture(scope="class")
    def study(self):
        return load("tsp")

    @pytest.fixture(scope="class")
    def sequential(self, study):
        return run_case_study(study)

    def test_threaded_equivalent(self, study, sequential):
        farm = VerificationFarm(FarmConfig(jobs=4))
        report = run_case_study(study, farm=farm)
        assert report.outcome.success == sequential.outcome.success
        assert snapshot(report.outcome) == snapshot(sequential.outcome)

    def test_process_equivalent(self, study, sequential):
        farm = VerificationFarm(FarmConfig(jobs=2, mode="process"))
        report = run_case_study(study, farm=farm)
        assert report.outcome.success == sequential.outcome.success
        assert snapshot(report.outcome) == snapshot(sequential.outcome)

    def test_cached_equivalent_and_hit_rate(
        self, study, sequential, tmp_path
    ):
        cache_dir = tmp_path / "proof-cache"
        cold_farm = VerificationFarm(FarmConfig(cache_dir=cache_dir))
        cold = run_case_study(study, farm=cold_farm)
        assert snapshot(cold.outcome) == snapshot(sequential.outcome)

        warm_farm = VerificationFarm(FarmConfig(cache_dir=cache_dir))
        warm = run_case_study(study, farm=warm_farm)
        assert warm.outcome.success == sequential.outcome.success
        assert snapshot(warm.outcome) == snapshot(sequential.outcome)
        summary = warm_farm.summary()
        # Only the (uncacheable) whole-program checks may re-execute:
        # every lemma obligation must come from the cache — comfortably
        # above the >= 90% incrementality bar.
        executed = [
            event.label
            for event in warm_farm.events.events(JOB_FINISHED)
        ]
        assert all(
            "WholeProgramRefinement" in label for label in executed
        )
        lemma_obligations = summary.jobs - len(executed)
        assert lemma_obligations > 0
        assert summary.cache_hits == lemma_obligations
        assert summary.cache_hits / lemma_obligations >= 0.9

    def test_threaded_cached_combination(self, study, sequential,
                                         tmp_path):
        cache_dir = tmp_path / "proof-cache"
        run_case_study(
            study,
            farm=VerificationFarm(FarmConfig(jobs=4,
                                             cache_dir=cache_dir)),
        )
        farm = VerificationFarm(FarmConfig(jobs=4, cache_dir=cache_dir))
        report = run_case_study(study, farm=farm)
        assert snapshot(report.outcome) == snapshot(sequential.outcome)
        assert farm.summary().cache_hits > 0


class TestMachineFingerprint:
    """Cache keys must track whole-machine semantics, not just lemma
    text: reachability-based obligations depend on global initial
    values that never appear in a lemma body."""

    @pytest.fixture(scope="class")
    def source(self):
        path = (pathlib.Path(__file__).parent.parent
                / "examples" / "running_example.arm")
        return path.read_text()

    def _verify(self, source, cache_dir):
        from repro.proofs.engine import verify_source

        farm = VerificationFarm(FarmConfig(cache_dir=cache_dir))
        outcome = verify_source(source, farm=farm)
        assert outcome.success
        return farm.summary()

    def test_semantic_edit_invalidates(self, source, tmp_path):
        cache_dir = tmp_path / "proof-cache"
        cold = self._verify(source, cache_dir)
        assert cold.cache_hits == 0

        warm = self._verify(source, cache_dir)
        assert warm.cache_hits > 0

        # Changing a global initializer changes the reachable-state
        # space every path/ownership obligation quantifies over, even
        # though no lemma statement or body mentions the literal.
        edited = source.replace(
            "best_len: uint32 := 255", "best_len: uint32 := 254"
        )
        assert edited != source
        after_edit = self._verify(edited, cache_dir)
        assert after_edit.cache_hits == 0

    def test_formatting_edit_still_hits(self, source, tmp_path):
        cache_dir = tmp_path / "proof-cache"
        self._verify(source, cache_dir)
        commented = "// formatting-only change\n" + source
        summary = self._verify(commented, cache_dir)
        assert summary.cache_hits > 0


class TestCacheEviction:
    """Byte cap + LRU eviction (``--cache-max-bytes``)."""

    def _key(self, i):
        return lemma_job_key(Lemma(f"L{i}", "s", ["b"]), "pf")

    def test_unbounded_by_default(self, tmp_path):
        cache = ProofCache(tmp_path / "c")
        for i in range(50):
            cache.put(self._key(i), Verdict("proved"))
        assert len(cache) == 50
        assert cache.evictions == 0

    def test_cap_evicts_down_to_hysteresis(self, tmp_path):
        cache = ProofCache(tmp_path / "c")
        cache.put(self._key(0), Verdict("proved"))
        entry_size = cache.total_bytes()
        assert entry_size > 0

        capped = ProofCache(tmp_path / "c2", max_bytes=entry_size * 10)
        for i in range(50):
            capped.put(self._key(i), Verdict("proved"))
        assert capped.total_bytes() <= entry_size * 10
        # Hysteresis: eviction overshoots to ~90% of the cap so every
        # store does not re-trigger a directory walk.
        assert capped.evictions > 0
        assert capped.evicted_bytes == capped.evictions * entry_size
        assert len(capped) < 50

    def test_eviction_is_least_recently_used(self, tmp_path):
        import os as _os

        cache = ProofCache(tmp_path / "c", max_bytes=None)
        keys = [self._key(i) for i in range(4)]
        for age, key in enumerate(keys):
            cache.put(key, Verdict("proved"))
            # Millisecond-resolution filesystems can't order four puts
            # in one tick; set mtimes explicitly (oldest first).
            _os.utime(cache._path(key), (1000 + age, 1000 + age))
        # Touch the oldest entry: a hit refreshes recency.
        assert cache.get(keys[0]) is not None
        entry_size = cache.total_bytes() // 4
        cache.max_bytes = entry_size * 3  # forces eviction on next put
        cache.put(self._key(99), Verdict("proved"))
        assert cache.get(keys[0]) is not None   # refreshed, survives
        assert cache.get(keys[1]) is None       # oldest mtime, evicted
        assert cache.evictions >= 1

    def test_evicted_entry_recomputes(self, tmp_path):
        counter = []
        cache_dir = tmp_path / "c"
        farm = VerificationFarm(FarmConfig(cache_dir=cache_dir))
        script, _ = make_script(counter=counter)
        farm.discharge(lemma_jobs(script, "pf"))
        assert counter == [1]
        entry_size = farm.cache.total_bytes()

        # A one-entry cap: storing anything else evicts the verdict.
        capped = VerificationFarm(FarmConfig(
            cache_dir=cache_dir, cache_max_bytes=entry_size,
        ))
        other, _ = make_script("assert y > 1;", counter)
        capped.discharge(lemma_jobs(other, "pf"))
        assert counter == [1, 1]
        assert capped.cache.evictions >= 1

        # The original obligation is simply recomputed on its miss.
        again, _ = make_script(counter=counter)
        VerificationFarm(FarmConfig(cache_dir=cache_dir)).discharge(
            lemma_jobs(again, "pf")
        )
        assert len(counter) == 3
        assert again.lemmas[0].verdict.ok

    def test_farm_report_shows_evictions(self, tmp_path):
        farm = VerificationFarm(FarmConfig(
            cache_dir=tmp_path / "c", cache_max_bytes=1,
        ))
        script, _ = make_script()
        farm.discharge(lemma_jobs(script, "pf"))
        assert farm.cache.evictions >= 1
        report = "\n".join(farm.report_lines())
        assert "evicted" in report
        summary = farm.summary()
        assert summary.cache_evictions >= 1
        assert any("evicted" in line
                   for line in summary.report_lines())


class TestSharedCacheConcurrency:
    """Two farm instances over one cache directory at once: the
    multi-tenant shape the serve daemon relies on."""

    def _chain_jobs(self, counter, n=12):
        scripts = []
        jobs = []
        for i in range(n):
            script = ProofScript(f"P{i}", "weakening", "Low", "High")

            def obligation(i=i):
                counter.append(i)
                return proved()

            script.add(Lemma(f"L{i}", f"claim {i}", [f"assert {i};"],
                             obligation=obligation))
            scripts.append(script)
            jobs.append(lemma_jobs(script, "pf"))
        return scripts, jobs

    def test_concurrent_farms_no_torn_reads(self, tmp_path):
        import threading

        counter = []
        scripts_a, jobs_a = self._chain_jobs(counter)
        scripts_b, jobs_b = self._chain_jobs(counter)
        farm_a = VerificationFarm(FarmConfig(cache_dir=tmp_path / "c"))
        farm_b = VerificationFarm(FarmConfig(cache_dir=tmp_path / "c"))

        def run(farm, batches):
            for batch in batches:
                farm.discharge(batch)

        threads = [
            threading.Thread(target=run, args=(farm_a, jobs_a)),
            threading.Thread(target=run, args=(farm_b, jobs_b)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Every lemma settled PROVED in both farms; a torn read would
        # have quarantined (miss, recompute) — never a wrong verdict.
        for script in scripts_a + scripts_b:
            assert script.lemmas[0].verdict.ok
        # At most one obligation run per distinct lemma *per farm*; the
        # overlap (second farm hitting the first's stores) is timing-
        # dependent, but the total can never exceed one run each.
        assert len(counter) <= 24
        assert farm_a.cache.quarantined == 0
        assert farm_b.cache.quarantined == 0

        # A third, sequential farm discharges everything by file read.
        scripts_c, jobs_c = self._chain_jobs(counter)
        before = len(counter)
        farm_c = VerificationFarm(FarmConfig(cache_dir=tmp_path / "c"))
        for batch in jobs_c:
            farm_c.discharge(batch)
        assert len(counter) == before
        assert farm_c.summary().cache_hits == 12

    def test_quarantine_self_heals_under_contention(self, tmp_path):
        import threading

        counter = []
        cache_dir = tmp_path / "c"
        seed_script, _ = make_script(counter=counter)
        seeder = VerificationFarm(FarmConfig(cache_dir=cache_dir))
        seeder.discharge(lemma_jobs(seed_script, "pf"))
        [key] = [j.key for j in lemma_jobs(seed_script, "pf")]
        # Corrupt the stored entry on disk (crashed-writer torso).
        seeder.cache._path(key).write_bytes(b"torn garbage")

        farms = [
            VerificationFarm(FarmConfig(cache_dir=cache_dir))
            for _ in range(2)
        ]
        scripts = []

        def run(farm):
            script, _ = make_script(counter=counter)
            scripts.append(script)
            farm.discharge(lemma_jobs(script, "pf"))

        threads = [threading.Thread(target=run, args=(f,))
                   for f in farms]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Both contenders settled correctly despite the bad entry:
        # whoever read it first quarantined and recomputed; the other
        # either recomputed too or hit the healed re-store.
        for script in scripts:
            assert script.lemmas[0].verdict.ok
        assert sum(f.cache.quarantined for f in farms) >= 1
        # The cache healed: a fresh farm discharges by file read.
        healed_script, _ = make_script(counter=counter)
        healed = VerificationFarm(FarmConfig(cache_dir=cache_dir))
        before = len(counter)
        healed.discharge(lemma_jobs(healed_script, "pf"))
        assert len(counter) == before
        assert healed_script.lemmas[0].verdict.ok


class TestGracefulDrain:
    """request_shutdown(): in-flight obligations finish, queued ones
    short-circuit to UNKNOWN — inconclusive, never cached."""

    def _scripts(self, farm, counter, n=6):
        scripts = []
        jobs = []
        for i in range(n):
            script = ProofScript(f"P{i}", "weakening", "Low", "High")

            def obligation(i=i):
                counter.append(i)
                if i == 1:
                    farm.request_shutdown()
                return proved()

            script.add(Lemma(f"L{i}", f"claim {i}", [f"assert {i};"],
                             obligation=obligation))
            scripts.append(script)
            jobs.extend(lemma_jobs(script, "pf"))
        return scripts, jobs

    def test_drain_short_circuits_queued_jobs(self):
        from repro.farm import JOB_CANCELLED

        farm = VerificationFarm()
        counter = []
        scripts, jobs = self._scripts(farm, counter)
        farm.discharge(jobs)
        # Obligation 1 requested the drain mid-run and still finished
        # (in-flight work completes); everything after it never ran.
        assert counter == [0, 1]
        assert scripts[0].lemmas[0].verdict.ok
        assert scripts[1].lemmas[0].verdict.ok
        for script in scripts[2:]:
            verdict = script.lemmas[0].verdict
            assert verdict.inconclusive
            assert not verdict.ok
            assert "cancelled" in str(verdict.counterexample)
        cancelled = farm.events.events(JOB_CANCELLED)
        assert len(cancelled) == 4
        assert farm.summary().cancelled == 4
        assert "cancelled by drain request" in "\n".join(
            farm.summary().report_lines()
        )

    def test_drained_verdicts_never_cached(self, tmp_path):
        counter = []
        cache_dir = tmp_path / "c"
        farm = VerificationFarm(FarmConfig(cache_dir=cache_dir))
        scripts, jobs = self._scripts(farm, counter)
        farm.discharge(jobs)
        assert counter == [0, 1]

        # A fresh farm (no drain this time) re-checks exactly the
        # cancelled obligations: the two settled verdicts hit the
        # cache, the four cancelled ones re-run.
        counter3 = []
        fresh = VerificationFarm(FarmConfig(cache_dir=cache_dir))
        scripts3 = []
        batch = []
        for i in range(6):
            script = ProofScript(f"P{i}", "weakening", "Low", "High")

            def obligation(i=i):
                counter3.append(i)
                return proved()

            script.add(Lemma(f"L{i}", f"claim {i}", [f"assert {i};"],
                             obligation=obligation))
            scripts3.append(script)
            batch.extend(lemma_jobs(script, "pf"))
        fresh.discharge(batch)
        assert sorted(counter3) == [2, 3, 4, 5]
        for script in scripts3:
            assert script.lemmas[0].verdict.ok

    def test_drain_flushes_journal_with_settled_only(self, tmp_path):
        from repro.farm import Journal

        farm = VerificationFarm(FarmConfig(
            journal_path=tmp_path / "j.jsonl",
        ))
        counter = []
        scripts, jobs = self._scripts(farm, counter)
        farm.discharge(jobs)
        farm.close()
        journal = Journal(tmp_path / "j.jsonl")
        # Only the two settled verdicts were journaled; cancelled
        # (inconclusive) obligations must be re-checked on resume.
        assert len(journal) == 2
        journal.close()
