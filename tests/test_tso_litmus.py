"""The classic litmus tests (Owens, Sarkar & Sewell 2009 — the paper's
reference [35]) checked exhaustively against our semantics, across all
three shipped memory models.

x86-TSO allows exactly one relaxation: a load may be reordered before
an earlier store to a *different* address (FIFO store buffering).  SC
allows none; C11 release/acquire additionally gives up multi-copy
atomicity (IRIW).  The suite checks both directions per model: each
allowed weak outcome is reachable, and every forbidden outcome is
unreachable.
"""

import pytest

from repro.explore.explorer import final_logs
from repro.lang.frontend import check_level
from repro.machine.translator import translate_level

ALL_MODELS = ("sc", "tso", "ra")


def logs_of(source: str, max_states: int = 2_000_000,
            memory_model: str | None = None):
    machine = translate_level(
        check_level("level L { " + source + " }"),
        memory_model=memory_model,
    )
    return {
        log for kind, log in final_logs(machine, max_states)
        if kind == "normal"
    }


def analysis_of(source: str, max_states: int = 200_000):
    from repro.analysis import analyze_level

    return analyze_level(
        check_level("level L { " + source + " }"), max_states=max_states
    )


def _print_regs(*names: str) -> str:
    parts = []
    for i, name in enumerate(names):
        parts.append(f"var s{i}: uint32 := 0; s{i} := {name}; "
                     f"print_uint32(s{i});")
    return " ".join(parts)


class TestStoreBuffering:
    """SB: Dekker's-style pattern.  x86-TSO *allows* r1 = r2 = 0."""

    SOURCE = (
        "var x: uint32; var y: uint32; var r1: uint32; var r2: uint32; "
        "void t1() { x := 1; r1 := y; fence(); } "
        "void main() { var a: uint64 := 0; a := create_thread t1(); "
        "y := 1; r2 := x; join a; fence(); "
        + _print_regs("r1", "r2")
        + " }"
    )

    @pytest.mark.parametrize("model", ["tso", "ra"])
    def test_weak_outcome_allowed(self, model):
        assert (0, 0) in logs_of(self.SOURCE, memory_model=model)

    def test_weak_outcome_forbidden_under_sc(self):
        assert (0, 0) not in logs_of(self.SOURCE, memory_model="sc")

    def test_all_four_outcomes(self):
        assert logs_of(self.SOURCE) == {(0, 0), (0, 1), (1, 0), (1, 1)}

    @pytest.mark.parametrize("model", ALL_MODELS)
    def test_mfence_restores_sc(self, model):
        fenced = self.SOURCE.replace(
            "x := 1; r1 := y;", "x := 1; fence(); r1 := y;"
        ).replace(
            "y := 1; r2 := x;", "y := 1; fence(); r2 := x;"
        )
        assert (0, 0) not in logs_of(fenced, memory_model=model)


class TestMessagePassing:
    """MP: the flag publication idiom.  TSO's FIFO buffers forbid
    observing the flag without the data."""

    @pytest.mark.parametrize("model", ALL_MODELS)
    def test_stale_data_forbidden(self, model):
        logs = logs_of(
            "var data: uint32; var flag: uint32; "
            "var rf: uint32; var rd: uint32; "
            "void writer() { data := 42; flag := 1; } "
            "void main() { var a: uint64 := 0; "
            "a := create_thread writer(); "
            "rf := flag; rd := data; join a; fence(); "
            + _print_regs("rf", "rd")
            + " }",
            memory_model=model,
        )
        assert (1, 0) not in logs
        assert (1, 42) in logs
        assert (0, 0) in logs  # reading before publication is fine


class TestLoadBuffering:
    """LB: loads are *not* reordered after later stores on x86-TSO,
    so r1 = r2 = 1 is forbidden."""

    @pytest.mark.parametrize("model", ALL_MODELS)
    def test_lb_forbidden(self, model):
        logs = logs_of(
            "var x: uint32; var y: uint32; "
            "var r1: uint32; var r2: uint32; "
            "void t1() { r1 := x; y := 1; } "
            "void main() { var a: uint64 := 0; a := create_thread t1(); "
            "r2 := y; x := 1; join a; fence(); "
            + _print_regs("r1", "r2")
            + " }",
            memory_model=model,
        )
        assert (1, 1) not in logs


class TestCoherence:
    """CoRR: per-location coherence — a thread reading the same location
    twice can never see the new value then the old one."""

    @pytest.mark.parametrize("model", ALL_MODELS)
    def test_corr_forbidden(self, model):
        logs = logs_of(
            "var x: uint32; var r1: uint32; var r2: uint32; "
            "void writer() { x := 1; } "
            "void main() { var a: uint64 := 0; "
            "a := create_thread writer(); "
            "r1 := x; r2 := x; join a; fence(); "
            + _print_regs("r1", "r2")
            + " }",
            memory_model=model,
        )
        assert (1, 0) not in logs
        assert {(0, 0), (1, 1)} <= logs


class TestWriteOrder:
    """2+2W: writes to two locations drain in FIFO order, so the final
    values cannot cross (x=1,y=2 with t1 writing (x:=1;y:=1) after main
    wrote (y:=2;x:=2) means main's x:=2 drained before t1's... the
    forbidden final state is both locations holding each thread's
    *first* write)."""

    def test_own_reads_see_program_order(self):
        # A thread always sees its own writes in order (buffer search).
        logs = logs_of(
            "var x: uint32; var r1: uint32; "
            "void main() { x := 1; x := 2; r1 := x; fence(); "
            + _print_regs("r1")
            + " }"
        )
        assert logs == {(2,)}


class TestIRIW:
    """IRIW: independent readers see independent writes in a single
    global order on SC and TSO (both are multi-copy atomic), but C11
    release/acquire lets the two readers disagree."""

    SOURCE = (
        "var x: uint32; var y: uint32; "
        "var r1: uint32; var r2: uint32; "
        "var r3: uint32; var r4: uint32; "
        "void wx() { x ::= 1; } "
        "void wy() { y ::= 1; } "
        "void reader1() { r1 ::= x; r2 ::= y; } "
        "void main() { "
        "var a: uint64 := 0; var b: uint64 := 0; var c: uint64 := 0; "
        "a := create_thread wx(); b := create_thread wy(); "
        "c := create_thread reader1(); "
        "r3 ::= y; r4 ::= x; "
        "join a; join b; join c; "
        + _print_regs("r1", "r2", "r3", "r4")
        + " }"
    )

    @pytest.mark.parametrize("model", ["sc", "tso"])
    def test_iriw_forbidden(self, model):
        logs = logs_of(
            self.SOURCE, max_states=4_000_000, memory_model=model
        )
        # reader1 sees x then not y; main sees y then not x.
        assert (1, 0, 1, 0) not in logs
        assert (1, 1, 1, 1) in logs

    def test_iriw_observable_under_ra(self):
        logs = logs_of(
            self.SOURCE, max_states=4_000_000, memory_model="ra"
        )
        assert (1, 0, 1, 0) in logs
        assert (1, 1, 1, 1) in logs


class TestAnalyzerAgreesWithLitmus:
    """The static analyzer (repro.analysis) must reproduce the known
    status of the litmus shapes: SB's unsynchronized globals are races
    whose TSO buffering is observable; MP's are races whose buffering
    is *not* (FIFO drains preserve publication order)."""

    MP_SOURCE = (
        "var data: uint32; var flag: uint32; "
        "var rf: uint32; var rd: uint32; "
        "void writer() { data := 42; flag := 1; } "
        "void main() { var a: uint64 := 0; "
        "a := create_thread writer(); "
        "rf := flag; rd := data; join a; fence(); "
        + _print_regs("rf", "rd")
        + " }"
    )

    def test_sb_globals_flagged_racy_with_witnesses(self):
        result = analysis_of(TestStoreBuffering.SOURCE)
        assert result.racy() == ["x", "y"]
        for name in ("x", "y"):
            verdict = result.verdict(name)
            assert verdict.dynamic == "confirmed"
            assert verdict.witness is not None
            assert {verdict.witness.first_kind,
                    verdict.witness.second_kind} & {"write"}

    def test_sb_globals_tso_sensitive(self):
        result = analysis_of(TestStoreBuffering.SOURCE)
        assert all(
            result.verdict(name).tso_sensitive for name in ("x", "y")
        )

    def test_mp_globals_racy_but_robust(self):
        result = analysis_of(self.MP_SOURCE)
        assert set(result.racy()) == {"data", "flag"}
        assert not any(
            v.tso_sensitive for v in result.verdicts.values()
        )


class TestAnalyzerOnCaseStudies:
    """Zero false positives on the shipped programs: every location
    the analyzer leaves RACY at the implementation level carries a
    witness pair from a *complete* explorer scan, so a lock-protected
    case study can never be misreported."""

    @pytest.mark.parametrize("name,max_states,expected_racy", [
        ("tsp", 200_000, []),
        ("barrier", 200_000, ["flag0", "flag1", "post1"]),
        ("mcslock", 400_000, ["locked", "nxt"]),
        ("queue", 400_000, ["read_index", "write_index"]),
        ("pointers", 200_000, []),
    ])
    def test_racy_set_matches_explorer(
        self, name, max_states, expected_racy
    ):
        from repro.analysis import analyze_level
        from repro.casestudies import load
        from repro.lang.frontend import check_program

        study = load(name)
        checked = check_program(study.source, f"<{name}>")
        level_name = checked.program.levels[0].name
        result = analyze_level(
            checked.contexts[level_name], max_states=max_states
        )
        assert result.dynamic is not None and result.dynamic.complete
        assert result.racy() == expected_racy
        for racy_name in expected_racy:
            assert result.verdict(racy_name).witness is not None
