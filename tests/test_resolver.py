"""Tests for name resolution."""

import pytest

from repro.errors import ResolveError
from repro.lang import asts as ast
from repro.lang import types as ty
from repro.lang.parser import parse_program
from repro.lang.resolver import resolve_level


def resolve(source: str):
    program = parse_program(source)
    return resolve_level(program.levels[0])


class TestGlobalsAndStructs:
    def test_globals_collected(self):
        ctx = resolve("level L { var x: uint32; var y: uint64; }")
        assert set(ctx.globals) == {"x", "y"}

    def test_duplicate_global_rejected(self):
        with pytest.raises(ResolveError):
            resolve("level L { var x: uint32; var x: uint64; }")

    def test_struct_reference_resolved(self):
        ctx = resolve(
            "level L { struct S { var a: uint32; } var s: S; }"
        )
        t = ctx.globals["s"].var_type
        assert isinstance(t, ty.StructType)
        assert t.field_type("a") == ty.UINT32

    def test_unknown_struct_rejected(self):
        with pytest.raises(ResolveError):
            resolve("level L { var s: Missing; }")

    def test_nested_structs(self):
        ctx = resolve(
            "level L { struct Inner { var v: uint8; } "
            "struct Outer { var i: Inner; var arr: Inner[2]; } "
            "var o: Outer; }"
        )
        outer = ctx.globals["o"].var_type
        inner = outer.field_type("i")
        assert inner.field_type("v") == ty.UINT8
        assert outer.field_type("arr").element == inner

    def test_recursive_struct_through_pointer_ok(self):
        ctx = resolve(
            "level L { struct Node { var next: ptr<Node>; "
            "var v: uint64; } var head: ptr<Node>; }"
        )
        node = ctx.structs["Node"]
        assert isinstance(node.field_type("next"), ty.PtrType)

    def test_duplicate_struct_rejected(self):
        with pytest.raises(ResolveError):
            resolve("level L { struct S { } struct S { } }")


class TestMethodsAndLocals:
    def test_locals_and_params(self):
        ctx = resolve(
            "level L { void m(p: uint32) { var x: uint64 := 0; } }"
        )
        assert ctx.local("m", "p").is_param
        assert ctx.local("m", "x").type == ty.UINT64

    def test_duplicate_local_rejected_flat_frames(self):
        # §3.2.2: frames are flat datatypes, one field per local.
        with pytest.raises(ResolveError):
            resolve(
                "level L { void m() { var x: uint32 := 0; "
                "if x > 0 { var x: uint32 := 1; } } }"
            )

    def test_unknown_variable_rejected(self):
        with pytest.raises(ResolveError):
            resolve("level L { void m() { nope := 1; } }")

    def test_unknown_method_call_rejected(self):
        with pytest.raises(ResolveError):
            resolve("level L { void m() { x := missing(); } }")

    def test_prelude_methods_available(self):
        ctx = resolve("level L { var mu: uint64; "
                      "void m() { lock(&mu); } }")
        assert "lock" in ctx.methods
        assert "compare_and_swap" in ctx.methods

    def test_address_taken_tracking(self):
        ctx = resolve(
            "level L { var g: uint32; void m() { "
            "var a: uint32 := 0; var b: uint32 := 0; "
            "var p: ptr<uint32> := null; "
            "p := &a; p := &g; b := b + 1; } }"
        )
        assert ctx.local("m", "a").address_taken
        assert not ctx.local("m", "b").address_taken
        assert "g" in ctx.addressed_globals

    def test_uninterpreted_ghost_functions_collected(self):
        ctx = resolve(
            "level L { void m() { assert valid_soln(1); } }"
        )
        assert "valid_soln" in ctx.uninterpreted

    def test_ghost_builtin_rhs_demoted(self):
        ctx = resolve(
            "level L { ghost var q: seq<int>; void m() "
            "{ q := drop(q, 1); } }"
        )
        program_stmt = ctx.level.methods[0].body.stmts[0]
        assert isinstance(program_stmt.rhss[0], ast.ExprRhs)

    def test_meta_variables_allowed(self):
        ctx = resolve("level L { void m() { assert $me >= 0; } }")
        assert ctx is not None

    def test_unknown_meta_variable_rejected(self):
        with pytest.raises(ResolveError):
            resolve("level L { void m() { assert $bogus == 0; } }")

    def test_quantifier_binds_its_variable(self):
        ctx = resolve(
            "level L { void m() { assert forall k: int . k == k; } }"
        )
        assert ctx is not None
