"""Hypothesis-driven differential fuzzing: the executable semantics
must agree with themselves.

The repo has three independent answers to "what does this program
compute": the compiled Python back ends (``repro.compiler.pybackend``),
the explorer's small-step state enumeration, and — within the explorer —
the ample-set partial-order reduction.  This suite generates random
*core-safe* Armada programs (locals-only arithmetic, at most one shared
access per statement, structurally bounded loops, division only by
nonzero constants) and asserts that every observer reports the same
final stores:

* single-threaded programs are deterministic, so all three compiled
  modes (sc / conservative / tso) and the explorer's unique final
  outcome must produce the identical print log;
* two-threaded lock-protected programs may have several outcomes, but
  a compiled execution must land on one the explorer enumerated, and
  POR-on/POR-off explorations must enumerate the *same* outcome set;
* the whole reduction stack — dynamic POR + sleep sets, thread
  symmetry, hash-sharded two-worker partitioning, and the
  regular-to-atomic lift — agrees with the full fan-out on every
  random machine, and counterexample traces found under reduction
  replay on a fresh unreduced machine (macro transitions recorded by
  the atomic lift arrive pre-expanded into their micro steps);
* random race-free programs *verify* identically with and without
  ``--atomic``: the engine-side lemma collapse changes farm job
  counts, never verdicts.

``derandomize=True`` keeps CI deterministic: the same ≥50 programs run
every time, and any divergence reproduces locally from the printed
source text alone.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.pybackend import compile_to_python
from repro.explore.explorer import Explorer
from repro.lang.frontend import check_level
from repro.machine.translator import translate_level

MODES = ("sc", "conservative", "tso")

#: Shared wrap-around arithmetic: both semantics model uint32, so any
#: op is fair game as long as a divisor can never be zero.
_BIN_OPS = ("+", "-", "*", "&", "|", "^")
_CONST_DIV_OPS = ("/", "%")

_LOCALS = ("a", "b", "d")
_GLOBALS = ("g0", "g1")


def _const(draw):
    return draw(st.integers(min_value=0, max_value=97))


@st.composite
def _statements(draw, depth: int, counters: list[int]) -> list[str]:
    """A block of core-safe statements.  ``counters`` hands out unique
    loop-variable names so no generated statement can ever touch a
    live loop counter (that is what makes every loop terminate)."""
    out: list[str] = []
    for _ in range(draw(st.integers(min_value=1, max_value=4))):
        kind = draw(
            st.sampled_from(
                ["arith", "arith", "div", "read", "write"]
                + (["if", "while"] if depth > 0 else [])
            )
        )
        if kind == "arith":
            target = draw(st.sampled_from(_LOCALS))
            left = draw(st.sampled_from(_LOCALS))
            op = draw(st.sampled_from(_BIN_OPS))
            right = draw(
                st.one_of(
                    st.sampled_from(_LOCALS),
                    st.integers(min_value=0, max_value=97).map(str),
                )
            )
            out.append(f"{target} := {left} {op} {right};")
        elif kind == "div":
            target = draw(st.sampled_from(_LOCALS))
            left = draw(st.sampled_from(_LOCALS))
            op = draw(st.sampled_from(_CONST_DIV_OPS))
            divisor = draw(st.integers(min_value=1, max_value=9))
            out.append(f"{target} := {left} {op} {divisor};")
        elif kind == "read":
            # One shared access per statement: a lone global read.
            target = draw(st.sampled_from(_LOCALS))
            out.append(f"{target} := {draw(st.sampled_from(_GLOBALS))};")
        elif kind == "write":
            source = draw(st.sampled_from(_LOCALS))
            out.append(f"{draw(st.sampled_from(_GLOBALS))} := {source};")
        elif kind == "if":
            scrutinee = draw(st.sampled_from(_LOCALS))
            bound = _const(draw)
            then = draw(_statements(depth=depth - 1, counters=counters))
            els = draw(_statements(depth=depth - 1, counters=counters))
            out.append(
                f"if {scrutinee} < {bound} {{ " + " ".join(then)
                + " } else { " + " ".join(els) + " }"
            )
        else:  # while — structurally bounded by a dedicated counter
            name = f"i{counters[0]}"
            counters[0] += 1
            trips = draw(st.integers(min_value=1, max_value=4))
            body = draw(_statements(depth=depth - 1, counters=counters))
            out.append(
                f"var {name}: uint32 := 0; "
                f"while {name} < {trips} {{ " + " ".join(body)
                + f" {name} := {name} + 1; }}"
            )
    return out


@st.composite
def _single_thread_program(draw) -> str:
    inits = [_const(draw) for _ in range(len(_GLOBALS) + len(_LOCALS))]
    body = draw(_statements(depth=2, counters=[0]))
    globals_decl = " ".join(
        f"var {name}: uint32 := {value};"
        for name, value in zip(_GLOBALS, inits)
    )
    locals_decl = " ".join(
        f"var {name}: uint32 := {value};"
        for name, value in zip(_LOCALS, inits[len(_GLOBALS):])
    )
    # Print the full final store (globals via a local temp so the
    # print statement itself stays single-shared-access).
    prints = " ".join(
        f"t := {name}; print_uint32(t);" for name in _GLOBALS
    ) + " " + " ".join(f"print_uint32({name});" for name in _LOCALS)
    return (
        f"level L {{ {globals_decl} "
        f"void main() {{ {locals_decl} " + " ".join(body)
        + f" var t: uint32 := 0; {prints} }} }}"
    )


@st.composite
def _two_thread_program(draw) -> str:
    """Two threads bumping one lock-protected global.  The critical
    sections may be non-commutative, so several final values are
    legal — but only the ones the explorer enumerates."""

    def critical(draw):
        op = draw(st.sampled_from(("+", "*", "^", "|")))
        k = draw(st.integers(min_value=1, max_value=9))
        return f"t := g; g := t {op} {k};"

    worker_cs = critical(draw)
    main_cs = critical(draw)
    init = _const(draw)
    return (
        f"level L {{ var g: uint32 := {init}; var mu: uint64; "
        "void worker() { var t: uint32 := 0; "
        f"lock(&mu); {worker_cs} unlock(&mu); }} "
        "void main() { var h: uint64 := 0; var t: uint32 := 0; "
        "initialize_mutex(&mu); h := create_thread worker(); "
        f"lock(&mu); {main_cs} unlock(&mu); "
        "join h; fence(); t := g; print_uint32(t); } }"
    )


def _explore(source: str, por: bool, memory_model: str | None = None):
    machine = translate_level(
        check_level(source), memory_model=memory_model
    )
    result = Explorer(machine, max_states=60_000, por=por).explore()
    assert not result.hit_state_budget, source
    return result


def _outcome_set(result):
    return sorted(
        (kind, tuple(log)) for kind, log in result.final_outcomes
    )


@settings(max_examples=25, derandomize=True, deadline=None)
@given(source=_single_thread_program())
def test_compiled_modes_agree_with_explorer_single_thread(source):
    ctx = check_level(source)
    logs = {mode: compile_to_python(ctx, mode).run() for mode in MODES}
    # One thread ⇒ one schedule ⇒ all three memory models coincide.
    assert logs["conservative"] == logs["sc"], source
    assert logs["tso"] == logs["sc"], source
    outcomes = _outcome_set(_explore(source, por=False))
    assert outcomes == [("normal", tuple(logs["sc"]))], source


@settings(max_examples=15, derandomize=True, deadline=None)
@given(source=_two_thread_program())
def test_compiled_execution_is_an_explored_outcome_two_threads(source):
    ctx = check_level(source)
    result = _explore(source, por=False)
    assert not result.has_ub, source
    legal_logs = {
        tuple(log) for kind, log in result.final_outcomes
        if kind == "normal"
    }
    assert legal_logs, source
    for mode in MODES:
        log = tuple(compile_to_python(ctx, mode).run())
        assert log in legal_logs, (mode, source)


@settings(max_examples=15, derandomize=True, deadline=None)
@given(source=_two_thread_program())
def test_por_preserves_outcome_set(source):
    full = _explore(source, por=False)
    reduced = _explore(source, por=True)
    assert _outcome_set(full) == _outcome_set(reduced), source
    assert sorted(full.ub_reasons) == sorted(reduced.ub_reasons), source


@settings(max_examples=15, derandomize=True, deadline=None)
@given(source=_two_thread_program())
def test_dpor_and_symmetry_preserve_outcome_set(source):
    """Dynamic POR with sleep sets, alone and composed with
    thread-symmetry, agrees with the full fan-out on outcomes, UB and
    assertion presence — on every generated machine."""
    full = _explore(source, por=False)
    for kwargs in ({"dpor": True}, {"dpor": True, "symmetry": True}):
        machine = translate_level(check_level(source))
        reduced = Explorer(machine, 60_000, **kwargs).explore()
        assert not reduced.hit_state_budget, source
        assert _outcome_set(full) == _outcome_set(reduced), \
            (kwargs, source)
        assert set(full.ub_reasons) == set(reduced.ub_reasons), \
            (kwargs, source)
        assert bool(full.assert_failures) == \
            bool(reduced.assert_failures), (kwargs, source)


@settings(max_examples=8, derandomize=True, deadline=None)
@given(source=_two_thread_program())
def test_sharded_matches_full_exactly(source):
    """Hash-sharded two-worker exploration is a partition of the full
    fan-out: identical state and transition counts, identical
    outcomes."""
    from repro.explore import ShardedExplorer

    full = _explore(source, por=False)
    machine = translate_level(check_level(source))
    sharded = ShardedExplorer(
        machine, workers=2, max_states=60_000
    ).explore()
    assert sharded.states_visited == full.states_visited, source
    assert sharded.transitions_taken == full.transitions_taken, source
    assert _outcome_set(full) == _outcome_set(sharded), source
    assert set(full.ub_reasons) == set(sharded.ub_reasons), source


@st.composite
def _racy_div_program(draw) -> str:
    """An unprotected divisor race: some interleavings divide by zero.
    Exercises counterexample traces under reduction."""
    init = draw(st.integers(min_value=1, max_value=9))
    pre = draw(st.integers(min_value=0, max_value=3))
    filler = " ".join("u := u + 1;" for _ in range(pre))
    return (
        f"level L {{ var d: uint32 := {init}; var out: uint32 := 0; "
        "void z() { d := 0; } "
        "void main() { var a: uint64 := 0; var t: uint32 := 0; "
        f"var u: uint32 := 0; a := create_thread z(); {filler} "
        "t := d; out := 10 / t; join a; fence(); } }"
    )


@settings(max_examples=10, derandomize=True, deadline=None)
@given(source=_racy_div_program())
def test_reduced_counterexample_traces_replay_unreduced(source):
    """Every UB trace a reduced (or sharded) exploration reports must
    replay, transition by transition, on a fresh *unreduced* machine to
    the exact claimed failure — reductions may shrink the search, never
    fabricate a witness."""
    from repro.explore import ShardedExplorer, canonical_replay
    from repro.machine.state import TERM_UB

    full = _explore(source, por=False)
    assert full.has_ub, source

    def check(result):
        assert set(result.ub_reasons) == set(full.ub_reasons), source
        for reason, trace in zip(result.ub_reasons, result.ub_traces):
            fresh = translate_level(check_level(source))
            final = canonical_replay(fresh, trace)
            assert final.termination is not None, source
            assert final.termination.kind == TERM_UB, source
            assert final.termination.detail == reason, source

    for kwargs in ({"dpor": True}, {"dpor": True, "symmetry": True}):
        machine = translate_level(check_level(source))
        check(Explorer(machine, 60_000, **kwargs).explore())
    machine = translate_level(check_level(source))
    check(
        ShardedExplorer(machine, workers=2, max_states=60_000).explore()
    )


@settings(max_examples=10, derandomize=True, deadline=None)
@given(source=_two_thread_program())
def test_atomic_lift_preserves_outcome_set(source):
    """The regular-to-atomic lift, alone and composed with dynamic
    POR, agrees with the full fan-out on outcomes, UB and assertion
    presence — while only ever hiding states, never adding them."""
    full = _explore(source, por=False)
    for kwargs in ({"atomic": True}, {"atomic": True, "dpor": True}):
        machine = translate_level(check_level(source))
        reduced = Explorer(machine, 60_000, **kwargs).explore()
        assert not reduced.hit_state_budget, source
        assert _outcome_set(full) == _outcome_set(reduced), \
            (kwargs, source)
        assert set(full.ub_reasons) == set(reduced.ub_reasons), \
            (kwargs, source)
        assert bool(full.assert_failures) == \
            bool(reduced.assert_failures), (kwargs, source)
        assert reduced.states_visited <= full.states_visited, \
            (kwargs, source)


@settings(max_examples=8, derandomize=True, deadline=None)
@given(source=_racy_div_program())
def test_atomic_counterexample_traces_expand_and_replay(source):
    """A counterexample found under the atomic lift arrives as plain
    micro transitions (macro steps are flattened before they reach a
    trace) and replays on a fresh unreduced machine to the same
    violating state."""
    from repro.explore import canonical_replay
    from repro.explore.atomic import MacroTransition
    from repro.machine.state import TERM_UB

    full = _explore(source, por=False)
    assert full.has_ub, source
    for kwargs in ({"atomic": True}, {"atomic": True, "dpor": True}):
        machine = translate_level(check_level(source))
        result = Explorer(machine, 60_000, **kwargs).explore()
        assert set(result.ub_reasons) == set(full.ub_reasons), \
            (kwargs, source)
        for reason, trace in zip(result.ub_reasons, result.ub_traces):
            assert not any(
                isinstance(t, MacroTransition) for t in trace
            ), source
            fresh = translate_level(check_level(source))
            final = canonical_replay(fresh, trace)
            assert final.termination is not None, source
            assert final.termination.kind == TERM_UB, source
            assert final.termination.detail == reason, source


@settings(max_examples=6, derandomize=True, deadline=None)
@given(source=_two_thread_program())
def test_race_free_programs_verify_identically_with_atomic(source):
    """Engine-level differential: a race-free program's self-refinement
    verifies to the identical outcome with and without ``--atomic`` —
    the collapse merges farm obligations but cannot flip a verdict."""
    from repro.proofs.engine import verify_source

    program = (
        source.replace("level L ", "level Low ", 1) + "\n"
        + source.replace("level L ", "level High ", 1) + "\n"
        + "proof P { refinement Low High weakening }"
    )
    baseline = verify_source(program)
    collapsed = verify_source(program, atomic=True)
    assert baseline.success == collapsed.success, source
    assert baseline.end_to_end == collapsed.end_to_end, source
    assert [o.success for o in baseline.outcomes] == \
        [o.success for o in collapsed.outcomes], source


@settings(max_examples=15, derandomize=True, deadline=None)
@given(source=_two_thread_program())
def test_memory_models_agree_on_race_free_programs(source):
    """DRF guarantee, checked differentially: a lock-protected program
    never exposes a weak behaviour, so exploring it under SC, x86-TSO
    and C11 release/acquire must enumerate the same outcome set."""
    baseline = _outcome_set(_explore(source, por=False,
                                     memory_model="tso"))
    for model in ("sc", "ra"):
        outcomes = _outcome_set(
            _explore(source, por=False, memory_model=model)
        )
        assert outcomes == baseline, (model, source)
