"""Tests for the Python execution back end (all three modes)."""

import pytest

from repro.compiler.pybackend import compile_to_python
from repro.errors import CompileError
from repro.lang.frontend import check_level

MODES = ("sc", "conservative", "tso")


def run(source: str, mode: str = "sc"):
    ctx = check_level("level L { " + source + " }")
    return compile_to_python(ctx, mode).run()


class TestBasics:
    @pytest.mark.parametrize("mode", MODES)
    def test_arithmetic(self, mode):
        assert run(
            "void main() { var x: uint32 := 0; x := 2 + 3 * 4; "
            "print_uint32(x); }",
            mode,
        ) == [14]

    @pytest.mark.parametrize("mode", MODES)
    def test_unsigned_wrap(self, mode):
        assert run(
            "var x: uint32 := 4294967295; "
            "void main() { var t: uint32 := 0; t := x; x := t + 1; "
            "t := x; print_uint32(t); }",
            mode,
        ) == [0]

    @pytest.mark.parametrize("mode", MODES)
    def test_c_style_division(self, mode):
        assert run(
            "void main() { var a: uint32 := 7; var b: uint32 := 2; "
            "var c: uint32 := 0; c := a / b; print_uint32(c); }",
            mode,
        ) == [3]

    @pytest.mark.parametrize("mode", MODES)
    def test_loops_and_arrays(self, mode):
        assert run(
            "var a: uint32[5]; void main() { var i: uint32 := 0; "
            "while i < 5 { a[i] := i * i; i := i + 1; } "
            "var t: uint32 := 0; t := a[4]; print_uint32(t); }",
            mode,
        ) == [16]

    @pytest.mark.parametrize("mode", MODES)
    def test_method_calls(self, mode):
        assert run(
            "uint32 inc(n: uint32) { return n + 1; } "
            "void main() { var r: uint32 := 0; r := inc(41); "
            "print_uint32(r); }",
            mode,
        ) == [42]

    @pytest.mark.parametrize("mode", MODES)
    def test_modulo_and_bitmask_agree(self, mode):
        assert run(
            "void main() { var i: uint32 := 0; "
            "while i < 16 { assert (i & 7) == (i % 8); i := i + 1; } "
            "print_uint32(1); }",
            mode,
        ) == [1]

    @pytest.mark.parametrize("mode", MODES)
    def test_threads_and_mutex(self, mode):
        assert run(
            "var x: uint32; var mu: uint64; "
            "void worker() { var t: uint32 := 0; lock(&mu); t := x; "
            "x := t + 1; unlock(&mu); } "
            "void main() { var h: uint64 := 0; var t: uint32 := 0; "
            "initialize_mutex(&mu); h := create_thread worker(); "
            "lock(&mu); t := x; x := t + 1; unlock(&mu); join h; "
            "fence(); t := x; print_uint32(t); }",
            mode,
        ) == [2]

    @pytest.mark.parametrize("mode", MODES)
    def test_atomics(self, mode):
        assert run(
            "var c: uint64; void main() { var ok: bool := false; "
            "var o: uint64 := 0; var t: uint64 := 0; "
            "ok := compare_and_swap(&c, 0, 5); assert ok; "
            "o := atomic_exchange(&c, 9); assert o == 5; "
            "o := atomic_fetch_add(&c, 1); assert o == 9; "
            "t := c; print_uint64(t); }",
            mode,
        ) == [10]


class TestModeSpecifics:
    def test_sc_elides_fences(self):
        ctx = check_level(
            "level L { void main() { fence(); } }"
        )
        sc = compile_to_python(ctx, "sc").source
        conservative = compile_to_python(ctx, "conservative").source
        sc_main = sc[sc.index("def main"):]
        cons_main = conservative[conservative.index("def main"):]
        assert "fence()" not in sc_main
        assert "fence()" in cons_main

    def test_conservative_masks_every_store(self):
        ctx = check_level(
            "level L { var x: uint32; void main() { x := 1; } }"
        )
        code = compile_to_python(ctx, "conservative").source
        assert "& 0xffffffff" in code

    def test_tso_buffers_shared_writes(self):
        ctx = check_level(
            "level L { var x: uint32; void main() { x := 1; } }"
        )
        code = compile_to_python(ctx, "tso").source
        assert "_sb_write('x', 1)" in code

    def test_tso_mode_flushes_at_exit(self):
        # Without the exit fence a joined thread's writes could be lost.
        assert run(
            "var x: uint32; void worker() { x := 7; } "
            "void main() { var h: uint64 := 0; var t: uint32 := 0; "
            "h := create_thread worker(); join h; t := x; "
            "print_uint32(t); }",
            "tso",
        ) == [7]

    def test_shadowing_rejected(self):
        ctx = check_level(
            "level L { var x: uint32; void main() "
            "{ var x2: uint32 := 0; } void f(x: uint32) { } }"
        )
        # Parameter x shadows global x.
        with pytest.raises(CompileError):
            compile_to_python(ctx, "sc")

    def test_unknown_mode_rejected(self):
        ctx = check_level("level L { void main() { } }")
        with pytest.raises(CompileError):
            compile_to_python(ctx, "turbo")

    def test_heap_allocation_unsupported(self):
        ctx = check_level(
            "level L { void main() { var p: ptr<uint32> := null; "
            "p := malloc(uint32); } }"
        )
        with pytest.raises(CompileError):
            compile_to_python(ctx, "sc")


class TestDifferentialAgainstInterpreter:
    """The compiled code must agree with the reference state machine."""

    PROGRAMS = [
        "void main() { var x: uint32 := 0; var i: uint32 := 0; "
        "while i < 7 { x := x + i * i; i := i + 1; } "
        "print_uint32(x); }",
        "var a: uint32[4]; void main() { var i: uint32 := 0; "
        "while i < 4 { a[i] := 3 * i; i := i + 1; } "
        "var s: uint32 := 0; var t: uint32 := 0; i := 0; "
        "while i < 4 { t := a[i]; s := s + t; i := i + 1; } "
        "print_uint32(s); }",
        "uint32 gcd(a: uint32, b: uint32) { var r: uint32 := 0; "
        "if b == 0 { return a; } r := gcd(b, a % b); return r; } "
        "void main() { var g: uint32 := 0; g := gcd(48, 36); "
        "print_uint32(g); }",
    ]

    @pytest.mark.parametrize("program", PROGRAMS)
    @pytest.mark.parametrize("mode", MODES)
    def test_agrees_with_reference_runtime(self, program, mode):
        from repro.machine.translator import translate_level
        from repro.runtime.interpreter import run_level

        ctx = check_level("level L { " + program + " }")
        reference = run_level(translate_level(ctx)).log
        compiled = compile_to_python(ctx, mode).run()
        assert list(reference) == compiled
