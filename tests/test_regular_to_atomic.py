"""Unit tests for the regular-to-atomic transformation.

Three layers under test, bottom-up:

* PC classification (:func:`repro.explore.atomic.classify_atomic`):
  which step kinds break an atomic block, per memory model — every
  thread-visible kind must break, chainable local statements must not,
  and C11 RA must self-disable the whole classification;
* atomic-path construction
  (:func:`repro.strategies.regular_to_atomic.atomic_paths`): the
  ``armada_atomic_path_info_t`` successor-table shape on hand-built
  mini-levels;
* the per-path simulation obligation, including the case the soundness
  story hinges on — a deliberately unsound collapse (an interior PC
  that is actually breaking) must be **rejected**, not sampled into a
  vacuous pass — and the engine-side ``collapse_proof_script``.
"""

import pytest

from repro.explore.atomic import (
    AtomicClassification,
    AtomicLift,
    MacroTransition,
    classify_atomic,
)
from repro.lang.frontend import check_level, check_program
from repro.machine.program import Transition
from repro.machine.steps import (
    AssertStep,
    AssignStep,
    AssumeStep,
    BranchStep,
    CallStep,
    CreateThreadStep,
    ExternStep,
    JoinStep,
    MallocStep,
    ReturnStep,
    SomehowStep,
)
from repro.machine.translator import translate_level
from repro.proofs.artifacts import Lemma, ProofScript, bool_verdict, proved
from repro.strategies.base import ProofRequest
from repro.strategies.regular_to_atomic import (
    AtomicPathInfo,
    AtomicSuccessorInfo,
    RegularToAtomicStrategy,
    atomic_paths,
    collapse_proof_script,
)

MODELS = ("sc", "tso")


def machine_for(source: str, memory_model: str = "tso"):
    return translate_level(
        check_level("level L { " + source + " }"),
        memory_model=memory_model,
    )


def pcs_holding(machine, step_type):
    """PCs whose step list contains an instance of *step_type*."""
    return [
        pc for pc, steps in machine.steps_by_pc.items()
        if any(isinstance(s, step_type) for s in steps)
    ]


# ---------------------------------------------------------------------------
# PC classification


#: One program per step kind.  ``breaking_kinds`` are thread-visible
#: and must classify breaking under sc and tso alike.
TWO_THREADS = (
    "var x: uint32; "
    "void t() { x := 1; } "
    "void main() { var a: uint64 := 0; a := create_thread t(); "
    "x := 2; join a; } "
)

BREAKING_KINDS = [
    ("shared_assign", TWO_THREADS, AssignStep),
    ("create_thread", TWO_THREADS, CreateThreadStep),
    ("join", TWO_THREADS, JoinStep),
    ("return", TWO_THREADS, ReturnStep),
    (
        "extern_output",
        "void main() { var i: uint32 := 0; print_uint32(i); }",
        ExternStep,
    ),
    (
        "assert",
        "void main() { var i: uint32 := 0; assert i == 0; }",
        AssertStep,
    ),
    (
        "somehow",
        "var x: uint32; void main() { somehow modifies x "
        "ensures x <= 2; }",
        SomehowStep,
    ),
    (
        "call",
        "void helper() { } void main() { helper(); }",
        CallStep,
    ),
    (
        "malloc",
        "void main() { var p: ptr<uint32> := null; "
        "p := malloc(uint32); dealloc p; }",
        MallocStep,
    ),
]


class TestStepClassification:
    @pytest.mark.parametrize("model", MODELS)
    @pytest.mark.parametrize(
        "kind,source,step_type",
        BREAKING_KINDS,
        ids=[k for k, _, _ in BREAKING_KINDS],
    )
    def test_thread_visible_kinds_break(
        self, model, kind, source, step_type
    ):
        machine = machine_for(source, model)
        cls = classify_atomic(machine)
        assert cls.disabled is None
        pcs = pcs_holding(machine, step_type)
        assert pcs, f"no {step_type.__name__} in the program"
        for pc in pcs:
            assert cls.breaking[pc], (
                f"{step_type.__name__} at {pc} must break under {model}"
            )
            assert pc in cls.reasons

    @pytest.mark.parametrize("model", MODELS)
    def test_local_assign_branch_assume_chain(self, model):
        machine = machine_for(
            "void main() { var i: uint32 := 0; i := i + 1; "
            "assume i == 1; if i < 2 { i := i + 2; } "
            "print_uint32(i); }",
            model,
        )
        cls = classify_atomic(machine)
        assert cls.enabled
        # Each chainable kind appears at some non-breaking pc.
        for step_type in (AssignStep, BranchStep, AssumeStep):
            assert any(
                pc in cls.chain_pcs
                for pc in pcs_holding(machine, step_type)
            ), f"no chainable {step_type.__name__} pc under {model}"

    @pytest.mark.parametrize("model", MODELS)
    def test_nondet_guard_breaks(self, model):
        machine = machine_for(
            "void main() { var i: uint32 := 0; "
            "if (*) { i := 1; } print_uint32(i); }",
            model,
        )
        cls = classify_atomic(machine)
        guard_pcs = [
            pc for pc in pcs_holding(machine, BranchStep)
            if any(
                isinstance(s, BranchStep) and s.cond is None
                for s in machine.steps_by_pc[pc]
            )
        ]
        assert guard_pcs
        for pc in guard_pcs:
            assert cls.breaking[pc]

    @pytest.mark.parametrize("model", MODELS)
    def test_loop_head_breaks(self, model):
        machine = machine_for(
            "void main() { var i: uint32 := 0; "
            "while i < 3 { i := i + 1; } print_uint32(i); }",
            model,
        )
        cls = classify_atomic(machine)
        assert cls.loop_heads, "while loop produced no back edge"
        for pc in cls.loop_heads:
            assert cls.breaking[pc]
            assert "loop head" in cls.reasons[pc]

    @pytest.mark.parametrize("model", MODELS)
    def test_method_entries_break(self, model):
        machine = machine_for(TWO_THREADS, model)
        cls = classify_atomic(machine)
        for entry in machine.method_entry.values():
            assert cls.breaking[entry]

    def test_explicit_atomic_region_breaks(self):
        machine = machine_for(
            "var x: uint32; void main() "
            "{ atomic { x := 1; x := 2; } x := 3; }"
        )
        cls = classify_atomic(machine)
        non_yieldable = [
            pc for pc, info in machine.pcs.items() if not info.yieldable
        ]
        assert non_yieldable
        for pc in non_yieldable:
            assert cls.breaking[pc]

    def test_ra_disables_classification(self):
        machine = machine_for(TWO_THREADS, "ra")
        cls = classify_atomic(machine)
        assert not cls.enabled
        assert cls.disabled is not None and "ra" in cls.disabled
        assert "disabled" in cls.describe()

    def test_classification_is_cached_per_machine(self):
        machine = machine_for(TWO_THREADS)
        assert classify_atomic(machine) is classify_atomic(machine)

    def test_describe_counts_non_breaking(self):
        machine = machine_for(
            "void main() { var i: uint32 := 0; i := i + 1; "
            "print_uint32(i); }"
        )
        cls = classify_atomic(machine)
        assert f"{len(cls.chain_pcs)}/{len(cls.breaking)}" \
            in cls.describe()


# ---------------------------------------------------------------------------
# atomic-path construction (the armada_atomic_path_info_t table)


class TestAtomicPaths:
    def test_straightline_run_collapses_to_one_action(self):
        machine = machine_for(
            "void main() { var i: uint32 := 0; i := i + 1; "
            "i := i + 2; i := i + 3; print_uint32(i); }"
        )
        cls = classify_atomic(machine)
        table = atomic_paths(machine, cls)
        complete = [p for p in table if p.complete]
        assert complete
        # Some action absorbs the whole local run: its interior pcs are
        # all non-breaking and its endpoints are not.
        long = max(complete, key=lambda p: len(p.steps))
        assert len(long.steps) >= 3
        assert cls.breaking[long.start_pc]
        for pc in long.pcs[1:-1]:
            assert not cls.breaking[pc]

    def test_prefixes_carry_successor_tables(self):
        machine = machine_for(
            "void main() { var i: uint32 := 0; i := i + 1; "
            "if i < 2 { i := 5; } print_uint32(i); }"
        )
        cls = classify_atomic(machine)
        table = atomic_paths(machine, cls)
        prefixes = [p for p in table if not p.complete]
        assert prefixes, "branching interior must produce prefixes"
        for prefix in prefixes:
            assert prefix.successors
            for succ in prefix.successors:
                child = table[succ.path_index]
                # The successor extends the prefix by exactly the step
                # it names.
                step = machine.steps_at(prefix.pcs[-1])[succ.action_index]
                assert child.steps[: len(prefix.steps)] == prefix.steps
                assert child.steps[len(prefix.steps)] is step

    def test_action_indices_are_dense_and_unique(self):
        machine = machine_for(TWO_THREADS)
        table = atomic_paths(machine)
        indices = sorted(
            p.atomic_action_index for p in table if p.complete
        )
        assert indices == list(range(len(indices)))

    def test_every_path_starts_breaking(self):
        machine = machine_for(
            "void main() { var i: uint32 := 0; i := i + 1; "
            "print_uint32(i); }"
        )
        cls = classify_atomic(machine)
        for info in atomic_paths(machine, cls):
            assert cls.breaking.get(info.start_pc, True)

    def test_ra_paths_raise(self):
        from repro.errors import StrategyError

        machine = machine_for(TWO_THREADS, "ra")
        with pytest.raises(StrategyError, match="ra"):
            atomic_paths(machine)


# ---------------------------------------------------------------------------
# the per-path simulation obligation


def request_for(source: str, memory_model: str = "tso") -> ProofRequest:
    checked = check_program(source)
    proof = checked.program.proofs[0]
    low = checked.contexts[proof.low_level]
    high = checked.contexts[proof.high_level]
    return ProofRequest(
        proof=proof,
        low_ctx=low,
        high_ctx=high,
        low_machine=translate_level(low, memory_model=memory_model),
        high_machine=translate_level(high, memory_model=memory_model),
    )


SELF_REFINEMENT = (
    "level Low { var x: uint32; void main() "
    "{ var t: uint32 := 0; t := t + 1; t := t * 2; x := t; "
    "print_uint32(x); } }\n"
    "level High { var x: uint32; void main() "
    "{ var t: uint32 := 0; t := t + 1; t := t * 2; x := t; "
    "print_uint32(x); } }\n"
    "proof P { refinement Low High regular_to_atomic }\n"
)


class TestPathSimulation:
    def test_sound_paths_prove(self):
        request = request_for(SELF_REFINEMENT)
        script = RegularToAtomicStrategy().generate(request)
        path_lemmas = [
            l for l in script.lemmas
            if l.name.startswith("AtomicPathSimulates")
        ]
        assert path_lemmas
        for lemma in path_lemmas:
            verdict = lemma.obligation()
            assert verdict.ok, verdict.counterexample
            assert verdict.assignments_checked > 0

    def test_breaking_correct_lemma_proves(self):
        request = request_for(SELF_REFINEMENT)
        script = RegularToAtomicStrategy().generate(request)
        (lemma,) = [
            l for l in script.lemmas if l.name == "PcBreakingCorrect"
        ]
        assert lemma.obligation().ok

    def test_unsound_collapse_rejected(self):
        """A hand-built path whose interior PC is actually breaking (a
        shared write another thread can observe mid-block) must be
        refuted by the static re-audit inside the obligation."""
        request = request_for(
            "level Low { var x: uint32; "
            "void t() { x := 1; } "
            "void main() { var a: uint64 := 0; a := create_thread t(); "
            "x := 2; x := 3; join a; } }\n"
            "level High { var x: uint32; "
            "void t() { x := 1; } "
            "void main() { var a: uint64 := 0; a := create_thread t(); "
            "x := 2; x := 3; join a; } }\n"
            "proof P { refinement Low High regular_to_atomic }\n"
        )
        machine = request.low_machine
        cls = classify_atomic(machine)
        # Find two consecutive shared writes in main: x := 2; x := 3.
        write_pcs = [
            pc for pc in pcs_holding(machine, AssignStep)
            if machine.pcs[pc].method == "main" and cls.breaking[pc]
        ]
        assert len(write_pcs) >= 2
        first = min(write_pcs, key=lambda pc: machine.pcs[pc].index)
        (step,) = machine.steps_at(first)
        interior = step.target
        assert cls.breaking[interior], "test premise: interior breaks"
        (after,) = machine.steps_at(interior)
        forged = AtomicPathInfo(
            pcs=(first, interior, after.target),
            steps=(step, after),
            atomic_action_index=0,
        )
        lemma = RegularToAtomicStrategy()._path_lemma(
            machine, request, forged
        )
        verdict = lemma.obligation()
        assert not verdict.ok
        assert verdict.counterexample["pc"] == interior

    def test_disabled_script_under_ra(self):
        request = request_for(SELF_REFINEMENT, memory_model="ra")
        script = RegularToAtomicStrategy().generate(request)
        names = [l.name for l in script.lemmas]
        assert "AtomicLiftDisabled" in names
        assert "IdentityRefinement" in names
        assert not any(n.startswith("AtomicPathSimulates") for n in names)

    def test_differing_levels_rejected(self):
        from repro.errors import StrategyError

        request = request_for(
            "level Low { var x: uint32; void main() { x := 1; } }\n"
            "level High { var x: uint32; void main() { x := 2; } }\n"
            "proof P { refinement Low High regular_to_atomic }\n"
        )
        with pytest.raises(StrategyError, match="identical"):
            RegularToAtomicStrategy().generate(request)


# ---------------------------------------------------------------------------
# the exploration-side lift


class TestAtomicLift:
    def test_chain_parks_thread_on_breaking_pc(self):
        machine = machine_for(
            "void main() { var i: uint32 := 0; i := i + 1; "
            "i := i * 2; print_uint32(i); }"
        )
        lift = AtomicLift(machine)
        state = machine.initial_state()
        (tr,) = [
            t for t in machine.enabled_transitions(state)
            if not t.is_drain
        ]
        chained, end = lift.chain(tr, machine.next_state(state, tr))
        assert isinstance(chained, MacroTransition)
        assert chained.micro[0] is tr
        assert len(chained.micro) >= 2
        end_pc = end.threads[chained.tid].pc
        assert end_pc not in lift.classification.chain_pcs
        assert lift.stats.chains == 1
        assert lift.stats.micro_absorbed == len(chained.micro) - 1

    def test_macro_equals_micro_composition(self):
        machine = machine_for(
            "void main() { var i: uint32 := 0; i := i + 1; "
            "i := i * 2; print_uint32(i); }"
        )
        lift = AtomicLift(machine)
        state = machine.initial_state()
        (tr,) = [
            t for t in machine.enabled_transitions(state)
            if not t.is_drain
        ]
        chained, end = lift.chain(tr, machine.next_state(state, tr))
        replay = state
        for micro in chained.micro:
            replay = machine.next_state(replay, micro)
        assert replay == end

    def test_drains_and_macroless_pass_through(self):
        machine = machine_for(
            "var x: uint32; void main() { x := 1; print_uint32(x); }"
        )
        lift = AtomicLift(machine)
        state = machine.initial_state()
        for tr in machine.enabled_transitions(state):
            nxt = machine.next_state(state, tr)
            if tr.is_drain:
                assert lift.chain(tr, nxt) == (tr, nxt)

    def test_describe_shows_width(self):
        micro = (Transition(1, None, ()), Transition(1, None, ()))
        macro = MacroTransition(tid=1, micro=micro)
        assert "atomic[2]" in macro.describe()
        assert not macro.is_drain


# ---------------------------------------------------------------------------
# engine-side collapse of proof scripts


def _lemma(name, pc, verdict=None):
    return Lemma(
        name=name,
        statement=name,
        body=[],
        obligation=(lambda: verdict) if verdict is not None else None,
        pc=pc,
    )


def _script(*lemmas):
    script = ProofScript(
        proof_name="P", strategy="weakening",
        low_level="Low", high_level="High",
    )
    for lemma in lemmas:
        script.add(lemma)
    return script


CLS = AtomicClassification(
    breaking={"a": True, "b": False, "c": False, "d": True},
    reasons={"a": "shared", "d": "shared"},
    chain_pcs=frozenset({"b", "c"}),
)


class TestCollapseProofScript:
    def test_merges_a_non_breaking_run(self):
        script = _script(
            _lemma("L0", "a", proved()),
            _lemma("L1", "b", proved()),
            _lemma("L2", "c", proved()),
            _lemma("L3", "d", proved()),
        )
        absorbed = collapse_proof_script(script, CLS)
        # L0..L2 merge (block opens at a, extends through chain pcs
        # b and c); L3 opens a new block that stays singleton.
        assert absorbed == 2
        names = [l.name for l in script.lemmas]
        assert names == ["AtomicBlock_L0_x3", "L3"]
        assert script.lemmas[0].obligation().ok
        assert script.lemmas[0].pc == "a"

    def test_first_failure_wins_and_names_the_member(self):
        script = _script(
            _lemma("L0", "a", proved()),
            _lemma("L1", "b", bool_verdict(False, {"x": 1})),
            _lemma("L2", "c", proved()),
        )
        collapse_proof_script(script, CLS)
        (merged,) = script.lemmas
        verdict = merged.obligation()
        assert not verdict.ok
        assert verdict.counterexample["lemma"] == "L1"
        assert verdict.counterexample["x"] == 1

    def test_untagged_and_definitional_lemmas_break_blocks(self):
        script = _script(
            _lemma("L0", "a", proved()),
            _lemma("Definitional", None),          # no obligation, no pc
            _lemma("L1", "b", proved()),
        )
        absorbed = collapse_proof_script(script, CLS)
        assert absorbed == 0
        assert [l.name for l in script.lemmas] == [
            "L0", "Definitional", "L1",
        ]

    def test_unknown_pcs_never_merge(self):
        script = _script(
            _lemma("L0", "zz", proved()),
            _lemma("L1", "zz", proved()),
        )
        assert collapse_proof_script(script, CLS) == 0

    def test_disabled_classification_is_a_noop(self):
        script = _script(
            _lemma("L0", "a", proved()),
            _lemma("L1", "b", proved()),
        )
        disabled = AtomicClassification(disabled="ra")
        assert collapse_proof_script(script, disabled) == 0
        assert len(script.lemmas) == 2

    def test_customizations_concatenate(self):
        first = _lemma("L0", "a", proved())
        second = _lemma("L1", "b", proved())
        first.customization.append("// tweak-a")
        second.customization.append("// tweak-b")
        script = _script(first, second)
        collapse_proof_script(script, CLS)
        (merged,) = script.lemmas
        assert merged.customization == ["// tweak-a", "// tweak-b"]
