"""End-to-end semantic tests: whole programs explored exhaustively.

Each test states a program and the exact set of its observable outcomes
(termination kind, console log) under *all* interleavings, including
x86-TSO store-buffer behaviours (§3.2).
"""

import pytest

from repro.explore.explorer import final_logs
from repro.lang.frontend import check_level
from repro.machine.translator import translate_level


def outcomes(source: str, max_states: int = 500_000):
    machine = translate_level(check_level("level L { " + source + " }"))
    return final_logs(machine, max_states)


def logs_of(source: str, kind: str = "normal"):
    return {log for k, log in outcomes(source) if k == kind}


def kinds_of(source: str):
    return {k for k, _ in outcomes(source)}


class TestSequential:
    def test_arithmetic_and_print(self):
        assert logs_of(
            "void main() { var x: uint32 := 0; x := 2 + 3 * 4; "
            "print_uint32(x); }"
        ) == {(14,)}

    def test_while_loop(self):
        assert logs_of(
            "void main() { var i: uint32 := 0; var s: uint32 := 0; "
            "while i < 5 { s := s + i; i := i + 1; } print_uint32(s); }"
        ) == {(10,)}

    def test_break_and_continue(self):
        assert logs_of(
            "void main() { var i: uint32 := 0; var s: uint32 := 0; "
            "while true { i := i + 1; if i == 3 { continue; } "
            "if i > 5 { break; } s := s + i; } print_uint32(s); }"
        ) == {(1 + 2 + 4 + 5,)}

    def test_method_call_and_return_value(self):
        assert logs_of(
            "uint32 double(n: uint32) { return n + n; } "
            "void main() { var r: uint32 := 0; r := double(21); "
            "print_uint32(r); }"
        ) == {(42,)}

    def test_recursion(self):
        assert logs_of(
            "uint32 fact(n: uint32) { var r: uint32 := 0; "
            "if n <= 1 { return 1; } r := fact(n - 1); return n * r; } "
            "void main() { var r: uint32 := 0; r := fact(5); "
            "print_uint32(r); }"
        ) == {(120,)}

    def test_struct_field_updates(self):
        assert logs_of(
            "struct P { var x: uint32; var y: uint32; } var p: P; "
            "void main() { var t: uint32 := 0; p.x := 3; p.y := 4; "
            "t := p.x; print_uint32(t); }"
        ) == {(3,)}

    def test_array_indexing(self):
        assert logs_of(
            "var a: uint32[3]; void main() { var i: uint32 := 0; "
            "while i < 3 { a[i] := i * 10; i := i + 1; } "
            "var t: uint32 := 0; t := a[2]; print_uint32(t); }"
        ) == {(20,)}

    def test_nondet_guard_both_branches(self):
        assert logs_of(
            "void main() { if (*) { print_uint32(1); } "
            "else { print_uint32(2); } }"
        ) == {(1,), (2,)}


class TestTermination:
    def test_assert_failure(self):
        assert kinds_of("void main() { assert 1 == 2; }") == \
            {"assert_failure"}

    def test_assert_success(self):
        assert kinds_of("void main() { assert 1 < 2; }") == {"normal"}

    def test_division_by_zero_is_ub(self):
        assert kinds_of(
            "void main() { var a: uint32 := 1; var b: uint32 := 0; "
            "a := a / b; }"
        ) == {"undefined_behavior"}

    def test_signed_overflow_is_ub(self):
        assert kinds_of(
            "void main() { var a: int32 := 2147483647; a := a + 1; }"
        ) == {"undefined_behavior"}

    def test_unsigned_wraps_silently(self):
        assert logs_of(
            "void main() { var a: uint32 := 4294967295; a := a + 1; "
            "print_uint32(a); }"
        ) == {(0,)}

    def test_assume_false_blocks_forever(self):
        # An unsatisfiable enablement condition deadlocks the thread.
        assert kinds_of("void main() { assume false; }") == {"deadlock"}


class TestHeap:
    def test_malloc_write_read(self):
        assert logs_of(
            "void main() { var p: ptr<uint32> := null; var t: uint32 := 0;"
            " p := malloc(uint32); *p := 9; t := *p; print_uint32(t); }"
        ) == {(9,)}

    def test_use_after_free_is_ub(self):
        assert "undefined_behavior" in kinds_of(
            "void main() { var p: ptr<uint32> := null; "
            "p := malloc(uint32); dealloc p; *p := 1; }"
        )

    def test_null_deref_is_ub(self):
        assert kinds_of(
            "void main() { var p: ptr<uint32> := null; *p := 1; }"
        ) == {"undefined_behavior"}

    def test_malloc_may_fail_with_null(self):
        kinds = kinds_of(
            "void main() { var p: ptr<uint32> := null; "
            "p := malloc(uint32); *p := 1; }"
        )
        # Success path terminates normally; the failure path derefs null.
        assert kinds == {"normal", "undefined_behavior"}

    def test_calloc_zero_initializes(self):
        assert logs_of(
            "void main() { var p: ptr<uint32> := null; var t: uint32 := 0;"
            " p := calloc(uint32, 3); t := p[2]; print_uint32(t); }"
        ) == {(0,)}

    def test_pointer_into_freed_frame_is_ub(self):
        assert "undefined_behavior" in kinds_of(
            "var keep: ptr<uint32>; "
            "void helper() { var x: uint32 := 0; keep := &x; } "
            "void main() { helper(); *keep := 1; }"
        )

    def test_pointer_arithmetic_within_array(self):
        assert logs_of(
            "var arr: uint32[4]; void main() { "
            "var p: ptr<uint32> := null; var t: uint32 := 0; "
            "arr[2] := 5; p := &arr[0]; p := p + 2; t := *p; "
            "print_uint32(t); }"
        ) == {(5,)}

    def test_pointer_arithmetic_out_of_bounds_is_ub(self):
        assert "undefined_behavior" in kinds_of(
            "var arr: uint32[4]; void main() { "
            "var p: ptr<uint32> := null; p := &arr[0]; p := p + 5; }"
        )

    def test_allocated_predicate_via_ghost_level(self):
        assert kinds_of(
            "void main() { var p: ptr<uint32> := null; "
            "p := malloc(uint32); assert allocated(p); dealloc p; "
            "assert !allocated(p); }"
        ) <= {"normal", "assert_failure"}


class TestConcurrency:
    def test_store_buffering_litmus(self):
        # The defining x86-TSO weak behaviour: both loads may see 0.
        logs = logs_of(
            "var x: uint32; var y: uint32; "
            "var r1: uint32; var r2: uint32; "
            "void t1() { x := 1; r1 := y; } "
            "void main() { var a: uint64 := 0; a := create_thread t1(); "
            "y := 1; r2 := x; join a; "
            "var s1: uint32 := 0; var s2: uint32 := 0; "
            "s1 := r1; s2 := r2; print_uint32(s1); print_uint32(s2); }"
        )
        assert (0, 0) in logs
        assert logs == {(0, 0), (0, 1), (1, 0), (1, 1)}

    def test_fence_forbids_sb_weakness(self):
        logs = logs_of(
            "var x: uint32; var y: uint32; "
            "var r1: uint32; var r2: uint32; "
            "void t1() { x := 1; fence(); r1 := y; fence(); } "
            "void main() { var a: uint64 := 0; a := create_thread t1(); "
            "y := 1; fence(); r2 := x; join a; "
            "var s1: uint32 := 0; var s2: uint32 := 0; "
            "s1 := r1; s2 := r2; print_uint32(s1); print_uint32(s2); }"
        )
        assert (0, 0) not in logs

    def test_message_passing_respects_tso_fifo(self):
        # TSO store buffers are FIFO: if the reader sees the flag, it
        # sees the data.
        logs = logs_of(
            "var data: uint32; var flag: uint32; "
            "void writer() { data := 42; flag := 1; } "
            "void main() { var a: uint64 := 0; var f: uint32 := 0; "
            "var d: uint32 := 0; a := create_thread writer(); "
            "while f == 0 { f := flag; } d := data; join a; "
            "print_uint32(d); }"
        )
        assert logs == {(42,)}

    def test_mutex_provides_mutual_exclusion(self):
        logs = logs_of(
            "var x: uint32; var mu: uint64; "
            "void worker() { var t: uint32 := 0; lock(&mu); t := x; "
            "x := t + 1; unlock(&mu); } "
            "void main() { var a: uint64 := 0; var t: uint32 := 0; "
            "initialize_mutex(&mu); a := create_thread worker(); "
            "lock(&mu); t := x; x := t + 1; unlock(&mu); join a; "
            "t := x; print_uint32(t); }"
        )
        assert logs == {(2,)}

    def test_unlocked_counter_loses_updates(self):
        logs = logs_of(
            "var x: uint32; "
            "void worker() { var t: uint32 := 0; t := x; x := t + 1; } "
            "void main() { var a: uint64 := 0; var t: uint32 := 0; "
            "a := create_thread worker(); t := x; x := t + 1; join a; "
            "t := x; print_uint32(t); }"
        )
        assert logs == {(1,), (2,)}

    def test_terminated_thread_buffer_still_drains(self):
        # Regression: a thread may exit with pending stores; the
        # hardware still writes them back.  Here the worker's final
        # (buffered) store must be observable after its exit, or the
        # main thread would spin forever.
        logs = logs_of(
            "var flag: uint32; "
            "void worker() { flag := 1; } "
            "void main() { var h: uint64 := 0; var f: uint32 := 0; "
            "h := create_thread worker(); join h; "
            "while f == 0 { f := flag; } print_uint32(f); }"
        )
        assert logs == {(1,)}

    def test_join_waits_for_termination(self):
        logs = logs_of(
            "var x: uint32; "
            "void worker() { x := 7; } "
            "void main() { var a: uint64 := 0; var t: uint32 := 0; "
            "a := create_thread worker(); join a; t := x; "
            "print_uint32(t); }"
        )
        # Even after join, the worker's buffered write may still be in
        # its store buffer (drains are asynchronous).
        assert (7,) in logs

    def test_atomic_block_not_interleaved(self):
        logs = logs_of(
            "var x: uint32; "
            "void worker() { atomic { x := 10; x := x + 1; } } "
            "void main() { var a: uint64 := 0; var t: uint32 := 0; "
            "a := create_thread worker(); t := x; join a; "
            "print_uint32(t); }"
        )
        # Main reads either before (0) or after (10? no: after the
        # atomic block both writes are buffered...). Main can never
        # observe only a *partial* atomic effect from memory in a way
        # that exposes x == 10 ordering violations with x == 11 later.
        assert (0,) in logs

    def test_compare_and_swap(self):
        logs = logs_of(
            "var t0: uint64; "
            "void main() { var ok: bool := false; var t: uint64 := 0; "
            "ok := compare_and_swap(&t0, 0, 5); assert ok; "
            "ok := compare_and_swap(&t0, 0, 9); assert !ok; "
            "t := t0; print_uint64(t); }"
        )
        assert logs == {(5,)}

    def test_atomic_fetch_add(self):
        logs = logs_of(
            "var c: uint64; "
            "void worker() { var o: uint64 := 0; "
            "o := atomic_fetch_add(&c, 2); } "
            "void main() { var a: uint64 := 0; var o: uint64 := 0; "
            "var t: uint64 := 0; a := create_thread worker(); "
            "o := atomic_fetch_add(&c, 3); join a; t := c; "
            "print_uint64(t); }"
        )
        assert logs == {(5,)}

    def test_somehow_constrains_havoc(self):
        logs = logs_of(
            "var x: uint32; "
            "void main() { var t: uint32 := 0; x := 3; "
            "somehow modifies x ensures x == old(x) + 1; "
            "t := x; print_uint32(t); }"
        )
        assert logs == {(4,)}
