"""Partial-order reduction: soundness and payoff.

The ample-set reduction (:mod:`repro.explore.por`) must be invisible to
every observer: final outcomes, UB reasons, assertion failures and the
budget status are bit-identical with and without it, on every case
study and every TSO litmus shape — while the number of intermediate
states only ever shrinks.
"""

import pytest

from repro.casestudies import ALL, load
from repro.explore import AmpleReducer, Explorer, PorStats
from repro.lang.frontend import check_level, check_program
from repro.machine.translator import translate_level

#: Explorer budget per study (mcslock/queue need the larger bound).
STUDY_BUDGETS = {
    "tsp": 200_000,
    "barrier": 200_000,
    "pointers": 200_000,
    "mcslock": 400_000,
    "queue": 400_000,
}


def machine_for(source: str):
    return translate_level(check_level("level L { " + source + " }"))


def _print_regs(*names: str) -> str:
    parts = []
    for i, name in enumerate(names):
        parts.append(f"var s{i}: uint32 := 0; s{i} := {name}; "
                     f"print_uint32(s{i});")
    return " ".join(parts)


#: The x86-TSO litmus shapes of tests/test_tso_litmus.py.
LITMUS = {
    "SB": (
        "var x: uint32; var y: uint32; var r1: uint32; var r2: uint32; "
        "void t1() { x := 1; r1 := y; fence(); } "
        "void main() { var a: uint64 := 0; a := create_thread t1(); "
        "y := 1; r2 := x; join a; fence(); "
        + _print_regs("r1", "r2") + " }"
    ),
    "MP": (
        "var data: uint32; var flag: uint32; "
        "var rf: uint32; var rd: uint32; "
        "void writer() { data := 42; flag := 1; } "
        "void main() { var a: uint64 := 0; "
        "a := create_thread writer(); "
        "rf := flag; rd := data; join a; fence(); "
        + _print_regs("rf", "rd") + " }"
    ),
    "LB": (
        "var x: uint32; var y: uint32; "
        "var r1: uint32; var r2: uint32; "
        "void t1() { r1 := x; y := 1; } "
        "void main() { var a: uint64 := 0; a := create_thread t1(); "
        "r2 := y; x := 1; join a; fence(); "
        + _print_regs("r1", "r2") + " }"
    ),
    "CoRR": (
        "var x: uint32; var r1: uint32; var r2: uint32; "
        "void writer() { x := 1; } "
        "void main() { var a: uint64 := 0; "
        "a := create_thread writer(); "
        "r1 := x; r2 := x; join a; fence(); "
        + _print_regs("r1", "r2") + " }"
    ),
    "2+2W": (
        "var x: uint32; var r1: uint32; "
        "void main() { x := 1; x := 2; r1 := x; fence(); "
        + _print_regs("r1") + " }"
    ),
    "IRIW": (
        "var x: uint32; var y: uint32; "
        "var r1: uint32; var r2: uint32; "
        "var r3: uint32; var r4: uint32; "
        "void wx() { x ::= 1; } "
        "void wy() { y ::= 1; } "
        "void reader1() { r1 ::= x; r2 ::= y; } "
        "void main() { "
        "var a: uint64 := 0; var b: uint64 := 0; var c: uint64 := 0; "
        "a := create_thread wx(); b := create_thread wy(); "
        "c := create_thread reader1(); "
        "r3 ::= y; r4 ::= x; "
        "join a; join b; join c; "
        + _print_regs("r1", "r2", "r3", "r4") + " }"
    ),
}


def assert_equivalent(machine, max_states: int = 2_000_000):
    """Explore with and without POR and require observational equality;
    returns (full_result, reduced_result)."""
    full = Explorer(machine, max_states).explore()
    reduced = Explorer(machine, max_states, por=True).explore()
    assert reduced.final_outcomes == full.final_outcomes
    assert sorted(reduced.ub_reasons) == sorted(full.ub_reasons)
    assert reduced.assert_failures == full.assert_failures
    assert reduced.hit_state_budget == full.hit_state_budget
    assert reduced.states_visited <= full.states_visited
    return full, reduced


class TestLitmusEquivalence:
    """Every allowed weak outcome survives the reduction and no
    forbidden outcome appears."""

    @pytest.mark.parametrize("name", sorted(LITMUS))
    def test_outcomes_identical(self, name):
        assert_equivalent(machine_for(LITMUS[name]))

    def test_sb_weak_outcome_survives(self):
        machine = machine_for(LITMUS["SB"])
        logs = {
            log
            for kind, log in Explorer(machine, por=True)
            .explore().final_outcomes
            if kind == "normal"
        }
        assert logs == {(0, 0), (0, 1), (1, 0), (1, 1)}


class TestCaseStudyEquivalence:
    @pytest.mark.parametrize("study_name", sorted(ALL))
    def test_every_level_identical(self, study_name):
        study = load(study_name)
        checked = check_program(study.source, f"<{study_name}>")
        budget = STUDY_BUDGETS[study_name]
        for level in checked.program.levels:
            machine = translate_level(checked.contexts[level.name])
            assert_equivalent(machine, budget)

    def test_reduction_actually_prunes(self):
        # The acceptance floor: on the queue implementation the ample
        # sets must strictly shrink the state space, not just tie.
        study = load("queue")
        checked = check_program(study.source, "<queue>")
        machine = translate_level(checked.contexts["QueueImpl"])
        full, reduced = assert_equivalent(machine, 400_000)
        assert reduced.states_visited < full.states_visited
        assert reduced.por_stats is not None
        assert reduced.por_stats.transitions_pruned > 0
        assert reduced.por_stats.ample_states > 0


class TestReducerMechanics:
    def test_por_stats_absent_without_reduction(self):
        machine = machine_for("void main() { print_uint32(1); }")
        assert Explorer(machine).explore().por_stats is None

    def test_shared_reducer_accumulates_stats(self):
        study = load("queue")
        checked = check_program(study.source, "<queue>")
        machine = translate_level(checked.contexts["QueueImpl"])
        reducer = AmpleReducer(machine)
        first = Explorer(machine, 400_000, por=reducer).explore()
        second = Explorer(machine, 400_000, por=reducer).explore()
        # Each exploration reports only its own delta even though the
        # reducer's counters are cumulative.
        assert first.por_stats.ample_states == \
            second.por_stats.ample_states
        assert reducer.stats.ample_states == \
            first.por_stats.ample_states * 2

    def test_stats_describe_and_merge(self):
        a = PorStats(ample_states=2, full_states=3, transitions_pruned=5)
        b = PorStats(ample_states=1, full_states=1, transitions_pruned=2)
        a.merge(b)
        assert a.ample_states == 3
        assert "7 transitions pruned" in a.describe()

    def test_walk_visitor_sees_full_transition_list(self):
        # POR narrows which successors are *expanded*, never what a
        # visitor observes at a state — the analyzer's race scan
        # depends on seeing every enabled transition.
        study = load("queue")
        checked = check_program(study.source, "<queue>")
        machine = translate_level(checked.contexts["QueueImpl"])
        per_state_full: dict = {}
        Explorer(machine, 400_000).walk(
            lambda s, ts: per_state_full.setdefault(s, len(ts)) or True
        )
        mismatches = []

        def check(state, transitions):
            expected = per_state_full.get(state)
            if expected is not None and expected != len(transitions):
                mismatches.append(state)
            return True

        Explorer(machine, 400_000, por=True).walk(check)
        assert not mismatches


class TestIndependenceFacts:
    def test_register_steps_are_local(self):
        from repro.analysis.independence import step_independence

        machine = machine_for(
            "void main() { var i: uint32 := 0; "
            "while i < 3 { i := i + 1; } print_uint32(i); }"
        )
        facts = step_independence(machine.ctx, machine)
        # Pure register arithmetic and branches qualify; the print
        # (extern) step never does.
        assert facts.local_steps > 0
        assert facts.local_steps < facts.total_steps

    def test_multithreaded_global_not_private(self):
        from repro.analysis.independence import step_independence

        machine = machine_for(LITMUS["SB"])
        facts = step_independence(machine.ctx, machine)
        assert "x" not in facts.private_globals
        assert "y" not in facts.private_globals

    def test_single_context_global_is_private(self):
        from repro.analysis.independence import step_independence

        machine = machine_for(
            "var x: uint32; var y: uint32; "
            "void worker() { y := 1; y := 2; } "
            "void main() { var a: uint64 := 0; "
            "a := create_thread worker(); "
            "x := 1; x := 2; join a; fence(); print_uint32(x); }"
        )
        facts = step_independence(machine.ctx, machine)
        # x is only ever touched by main, y only by the worker: both
        # are single-context, so buffered stores to them (and their
        # drains) are invisible to the other thread.
        assert "x" in facts.private_globals
        assert "y" in facts.private_globals

    def test_ghost_mentions_disqualify(self):
        from repro.analysis.independence import step_independence

        machine = machine_for(
            "ghost var g: uint32 := 0; "
            "void main() { var t: uint32 := 0; g := 1; t := g; }"
        )
        facts = step_independence(machine.ctx, machine)
        # Both the ghost write and the ghost read are non-local.
        from repro.lang import asts as ast
        from repro.machine.steps import AssignStep

        checked_some = False
        for steps in machine.steps_by_pc.values():
            for step in steps:
                if not isinstance(step, AssignStep):
                    continue
                mentions_g = any(
                    isinstance(node, ast.Var) and node.name == "g"
                    for expr in step.reads_exprs()
                    for node in ast.walk_expr(expr)
                )
                if mentions_g:
                    checked_some = True
                    assert not facts.is_local(step)
        assert checked_some
