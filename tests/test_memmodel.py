"""Tests for the pluggable memory-model subsystem (repro.memmodel).

Covers the model registry, the C11 release/acquire state machinery,
the full litmus allowed/forbidden matrix, and — critically — that the
memory model is part of every proof-cache identity: a verdict obtained
under one model must never be replayed for another, even when the two
runs share a cache directory or an outcome cache.
"""

import pytest

from repro.explore.explorer import final_logs
from repro.farm import FarmConfig, VerificationFarm
from repro.lang.frontend import check_level, check_program
from repro.machine.translator import translate_level
from repro.memmodel import (
    DEFAULT_MODEL,
    MODELS,
    MemoryModel,
    RAModel,
    SCModel,
    TSOModel,
    get_model,
)
from repro.memmodel.litmus import CORPUS, TESTS, check_matrix, run_litmus
from repro.proofs.engine import ProofEngine


class TestRegistry:
    def test_shipped_models(self):
        assert sorted(MODELS) == ["ra", "sc", "tso"]
        assert DEFAULT_MODEL == "tso"

    def test_get_model_default_is_tso(self):
        assert get_model(None).name == "tso"
        assert get_model("tso") is get_model(None)

    def test_get_model_passes_instances_through(self):
        model = SCModel()
        assert get_model(model) is model

    def test_get_model_unknown_name_raises(self):
        with pytest.raises(ValueError, match="ra, sc, tso"):
            get_model("power")

    def test_model_kinds(self):
        assert isinstance(MODELS["sc"], SCModel)
        assert isinstance(MODELS["tso"], TSOModel)
        assert isinstance(MODELS["ra"], RAModel)
        assert all(
            isinstance(m, MemoryModel) for m in MODELS.values()
        )

    def test_only_ra_opts_out_of_por(self):
        assert MODELS["sc"].supports_por
        assert MODELS["tso"].supports_por
        assert not MODELS["ra"].supports_por


def _machine(source: str, model: str):
    return translate_level(
        check_level("level L { " + source + " }"), memory_model=model
    )


class TestModelStateShapes:
    SOURCE = "var x: uint32; void main() { x := 1; fence(); }"

    def test_tso_state_carries_no_ra_fields(self):
        machine = _machine(self.SOURCE, "tso")
        state = machine.initial_state()
        assert state.histories is None
        assert all(t.view is None for t in state.threads.values())

    def test_sc_threads_never_buffer(self):
        machine = _machine(self.SOURCE, "sc")
        state = machine.initial_state()
        for transition in machine.enabled_transitions(state):
            assert not transition.is_drain
            state2 = machine.next_state(state, transition)
            thread = state2.threads[transition.tid]
            assert thread.store_buffer == ()

    def test_ra_write_appends_history_record(self):
        machine = _machine(self.SOURCE, "ra")
        state = machine.initial_state()
        assert state.histories is not None
        store = next(
            t for t in machine.enabled_transitions(state)
            if not t.is_drain
        )
        state2 = machine.next_state(state, store)
        (loc,) = [
            loc for loc in state2.histories
            if getattr(loc, "root", None) is not None
            and loc.root.name == "x"
        ]
        history = state2.histories.get(loc)
        # Lazily materialized init record plus the new release write,
        # whose message view names its own timestamp.
        assert [value for value, _view in history][-1] == 1
        writer = state2.threads[store.tid]
        assert writer.view.get(loc) == len(history) - 1

    def test_sc_and_tso_reach_different_state_counts_on_sb(self):
        source = TESTS["SB"].source
        machines = {
            model: translate_level(
                check_level("level L { " + source + " }"),
                memory_model=model,
            )
            for model in ("sc", "tso")
        }
        counts = {}
        for model, machine in machines.items():
            states = {machine.initial_state()}
            frontier = list(states)
            while frontier:
                state = frontier.pop()
                for tr in machine.enabled_transitions(state):
                    nxt = machine.next_state(state, tr)
                    if nxt not in states:
                        states.add(nxt)
                        frontier.append(nxt)
            counts[model] = len(states)
        assert counts["sc"] < counts["tso"]


class TestLitmusMatrix:
    """The corpus's allowed/forbidden table holds for every shipped
    model — the headline property of the subsystem."""

    @pytest.mark.parametrize("test", [t.name for t in CORPUS])
    @pytest.mark.parametrize("model", sorted(MODELS))
    def test_expected_verdict(self, test, model):
        litmus = TESTS[test]
        logs = run_litmus(litmus, model)
        observed = litmus.weak_outcome in logs
        assert observed == litmus.allowed[model], (
            f"{test} under {model}: weak outcome "
            f"{litmus.weak_outcome} "
            f"{'observed' if observed else 'missing'} but expected "
            f"{'allowed' if litmus.allowed[model] else 'forbidden'}"
        )
        if litmus.strong_outcome is not None:
            assert litmus.strong_outcome in logs

    def test_check_matrix_is_all_ok(self):
        rows = check_matrix(models=("sc",), tests=("SB", "MP"))
        assert rows and all(row["ok"] for row in rows)

    def test_ra_is_strictly_weaker_than_tso_on_iriw(self):
        tso = run_litmus("IRIW", "tso")
        ra = run_litmus("IRIW", "ra")
        assert tso <= ra
        assert (1, 0, 1, 0) in ra - tso


PROGRAM = """
level Impl {
  var x: uint32;
  void main() { x := 3; print_uint32(x); }
}
level Spec {
  var x: uint32;
  void main() { x ::= 3; print_uint32(x); }
}
proof P { refinement Impl Spec tso_elim x "true" }
"""


class TestCacheKeys:
    """The memory model is part of every cache identity."""

    def _engine(self, model, **kwargs):
        checked = check_program(PROGRAM)
        return ProofEngine(checked, memory_model=model, **kwargs)

    def test_job_fingerprints_differ_across_models(self):
        prints = {
            model: self._engine(model)._job_fingerprint()
            for model in MODELS
        }
        assert len(set(prints.values())) == len(MODELS)
        assert "mm=tso" in prints["tso"]

    def test_level_fingerprints_differ_across_models(self):
        prints = {
            model: self._engine(model).level_fingerprint("Impl")
            for model in MODELS
        }
        assert len(set(prints.values())) == len(MODELS)

    def test_proof_keys_differ_across_models(self):
        keys = {}
        for model in MODELS:
            engine = self._engine(model)
            proof = engine.checked.program.proofs[0]
            keys[model] = engine.proof_key(proof)
        assert len(set(keys.values())) == len(MODELS)

    def test_shared_cache_dir_never_replays_across_models(self, tmp_path):
        """Regression: with one on-disk proof cache, a TSO run must not
        seed cache hits for an SC run of the same program — only a
        repeat run under the *same* model may hit."""
        cache_dir = tmp_path / "cache"

        def run(model):
            farm = VerificationFarm(FarmConfig(cache_dir=cache_dir))
            engine = self._engine(model, farm=farm)
            outcome = engine.run_all()
            summary = farm.summary()
            farm.close()
            return outcome, summary

        first, warm = run("tso")
        assert first.success
        assert warm.cache_hits == 0
        second, cold = run("sc")
        assert second.success
        assert cold.cache_hits == 0  # model changed: all keys miss
        third, hot = run("tso")
        assert third.success
        assert hot.cache_hits > 0  # same model: the cache does work

    def test_shared_outcome_cache_never_replays_across_models(self):
        from repro.serve.incremental import OutcomeCache

        cache = OutcomeCache()
        checked = check_program(PROGRAM)
        first = ProofEngine(
            checked, memory_model="tso", outcome_cache=cache
        ).run_all()
        assert first.success
        assert not any(o.from_cache for o in first.outcomes)
        second = ProofEngine(
            check_program(PROGRAM), memory_model="sc",
            outcome_cache=cache,
        ).run_all()
        assert second.success
        assert not any(o.from_cache for o in second.outcomes)
        third = ProofEngine(
            check_program(PROGRAM), memory_model="tso",
            outcome_cache=cache,
        ).run_all()
        assert third.success
        assert all(o.from_cache for o in third.outcomes)


class TestPerModelAnalysis:
    SB = (
        "var x: uint32; var y: uint32; "
        "var r1: uint32; var r2: uint32; "
        "void t1() { x := 1; r1 := y; fence(); } "
        "void main() { var a: uint64 := 0; a := create_thread t1(); "
        "y := 1; r2 := x; join a; fence(); "
        "var s: uint32 := 0; s := r1; print_uint32(s); } "
    )

    def _analysis(self, model):
        from repro.analysis import analyze_level

        return analyze_level(
            check_level("level L { " + self.SB + " }"),
            memory_model=model,
        )

    def test_sc_flags_no_weak_memory_sensitivity(self):
        result = self._analysis("sc")
        assert result.memory_model == "sc"
        assert not any(
            v.tso_sensitive for v in result.verdicts.values()
        )
        assert result.report().stats["memory_model"] == "sc"

    @pytest.mark.parametrize("model", ["tso", "ra"])
    def test_weak_models_flag_sb_stores(self, model):
        result = self._analysis(model)
        assert result.memory_model == model
        assert any(
            v.tso_sensitive for v in result.verdicts.values()
        )


class TestRaExecution:
    def test_lock_protected_program_agrees_across_models(self):
        source = (
            "var g: uint32 := 5; var mu: uint64; "
            "void worker() { var t: uint32 := 0; "
            "lock(&mu); t := g; g := t + 3; unlock(&mu); } "
            "void main() { var h: uint64 := 0; var t: uint32 := 0; "
            "initialize_mutex(&mu); h := create_thread worker(); "
            "lock(&mu); t := g; g := t * 2; unlock(&mu); "
            "join h; fence(); t := g; print_uint32(t); }"
        )
        logs = {}
        for model in sorted(MODELS):
            machine = _machine(source, model)
            logs[model] = {
                log for kind, log in final_logs(machine, 200_000)
                if kind == "normal"
            }
        assert logs["sc"] == logs["tso"] == logs["ra"] == {(13,), (16,)}

    def test_join_acquires_child_final_writes(self):
        # No fence: join itself must publish the child's plain write.
        source = (
            "var x: uint32; "
            "void child() { x := 7; } "
            "void main() { var h: uint64 := 0; var t: uint32 := 0; "
            "h := create_thread child(); join h; "
            "t := x; print_uint32(t); }"
        )
        machine = _machine(source, "ra")
        logs = {
            log for kind, log in final_logs(machine, 100_000)
            if kind == "normal"
        }
        assert logs == {(7,)}
