"""Tests for state-based expression evaluation (places, TSO views,
pointers, UB signalling)."""

import pytest

from repro.lang.frontend import check_level
from repro.lang.parser import parse_expression
from repro.lang.typechecker import TypeChecker
from repro.machine.evaluator import (
    EvalContext,
    eval_expr,
    eval_place,
    GhostPlace,
    LocalPlace,
    MemoryPlace,
)
from repro.machine.state import UBSignal
from repro.machine.translator import translate_level
from repro.machine.values import NONE_OPTION, Pointer, some


SOURCE = """
level L {
  var g: uint32 := 5;
  var arr: uint32[4];
  ghost var ghost_n: int := 7;
  ghost var q: seq<uint64> := [];
  struct Pair { var a: uint32; var b: uint32; }
  var pair: Pair;
  void main() {
    var x: uint32 := 3;
    var addressed: uint32 := 0;
    var p: ptr<uint32> := null;
    p := &addressed;
    print_uint32(x);
  }
}
"""


@pytest.fixture()
def setup():
    ctx = check_level(SOURCE)
    machine = translate_level(ctx)
    state = machine.initial_state()
    return ctx, machine, state


def typed_expr(ctx, text):
    expr = parse_expression(text)
    checker = TypeChecker(ctx)
    checker._check_expr(
        expr, ctx.method_contexts["main"], None, two_state=False
    )
    return expr


def ev(ctx, state, text, tid=1):
    ec = EvalContext(ctx, state, tid, "main")
    return eval_expr(ec, typed_expr(ctx, text))


class TestReads:
    def test_global_read(self, setup):
        ctx, machine, state = setup
        assert ev(ctx, state, "g") == 5

    def test_ghost_read(self, setup):
        ctx, machine, state = setup
        assert ev(ctx, state, "ghost_n") == 7

    def test_local_read(self, setup):
        ctx, machine, state = setup
        thread = state.thread(1).set_local("x", 11)
        state = state.with_thread(thread)
        assert ev(ctx, state, "x + 1") == 12

    def test_array_element(self, setup):
        ctx, machine, state = setup
        assert ev(ctx, state, "arr[2]") == 0

    def test_array_index_out_of_bounds_ub(self, setup):
        ctx, machine, state = setup
        with pytest.raises(UBSignal):
            ev(ctx, state, "arr[9]")

    def test_struct_field(self, setup):
        ctx, machine, state = setup
        assert ev(ctx, state, "pair.a") == 0

    def test_meta_me(self, setup):
        ctx, machine, state = setup
        assert ev(ctx, state, "$me") == 1

    def test_meta_sb_empty(self, setup):
        ctx, machine, state = setup
        assert ev(ctx, state, "$sb_empty") is True

    def test_tso_local_view(self, setup):
        ctx, machine, state = setup
        from repro.machine.values import Location, Root

        loc = Location(Root("global", "g"))
        thread = state.thread(1).push_buffer(loc, 99)
        state = state.with_thread(thread)
        assert ev(ctx, state, "g", tid=1) == 99
        assert state.memory[loc] == 5

    def test_sequence_ghost(self, setup):
        ctx, machine, state = setup
        state = state.with_ghost("q", (4, 5))
        assert ev(ctx, state, "first(q)") == 4
        assert ev(ctx, state, "len(q)") == 2
        assert ev(ctx, state, "drop(q, 1)") == (5,)

    def test_option_values(self, setup):
        ctx, machine, state = setup
        assert ev(ctx, state, "Some(3)") == some(3)
        assert ev(ctx, state, "None") == NONE_OPTION


class TestPlaces:
    def test_global_place_is_memory(self, setup):
        ctx, machine, state = setup
        ec = EvalContext(ctx, state, 1, "main")
        place = eval_place(ec, typed_expr(ctx, "g"))
        assert isinstance(place, MemoryPlace)

    def test_local_place(self, setup):
        ctx, machine, state = setup
        ec = EvalContext(ctx, state, 1, "main")
        place = eval_place(ec, typed_expr(ctx, "x"))
        assert isinstance(place, LocalPlace)

    def test_ghost_place(self, setup):
        ctx, machine, state = setup
        ec = EvalContext(ctx, state, 1, "main")
        place = eval_place(ec, typed_expr(ctx, "ghost_n"))
        assert isinstance(place, GhostPlace)

    def test_address_taken_local_is_memory(self, setup):
        ctx, machine, state = setup
        ec = EvalContext(ctx, state, 1, "main")
        place = eval_place(ec, typed_expr(ctx, "addressed"))
        assert isinstance(place, MemoryPlace)
        assert place.location.root.kind == "local"

    def test_array_element_place(self, setup):
        ctx, machine, state = setup
        ec = EvalContext(ctx, state, 1, "main")
        place = eval_place(ec, typed_expr(ctx, "arr[1]"))
        assert isinstance(place, MemoryPlace)
        assert place.location.path == (1,)


class TestPointers:
    def test_address_of_global(self, setup):
        ctx, machine, state = setup
        pointer = ev(ctx, state, "&g")
        assert isinstance(pointer, Pointer)
        assert pointer.location.root.name == "g"

    def test_deref_roundtrip(self, setup):
        ctx, machine, state = setup
        assert ev(ctx, state, "*(&g)") == 5

    def test_pointer_equality(self, setup):
        ctx, machine, state = setup
        assert ev(ctx, state, "&g == &g") is True
        assert ev(ctx, state, "&g == &arr[0]") is False

    def test_pointer_ordering_same_array(self, setup):
        ctx, machine, state = setup
        assert ev(ctx, state, "&arr[0] < &arr[2]") is True

    def test_pointer_ordering_cross_object_ub(self, setup):
        ctx, machine, state = setup
        with pytest.raises(UBSignal):
            ev(ctx, state, "&g < &arr[0]")

    def test_pointer_offset_in_bounds(self, setup):
        ctx, machine, state = setup
        pointer = ev(ctx, state, "&arr[1] + 2")
        assert pointer.location.path == (3,)

    def test_pointer_offset_out_of_bounds_ub(self, setup):
        ctx, machine, state = setup
        with pytest.raises(UBSignal):
            ev(ctx, state, "&arr[1] + 9")

    def test_null_deref_ub(self, setup):
        ctx, machine, state = setup
        with pytest.raises(UBSignal):
            ev(ctx, state, "*p")

    def test_allocated_of_global(self, setup):
        ctx, machine, state = setup
        assert ev(ctx, state, "allocated(&g)") is True

    def test_allocated_array(self, setup):
        ctx, machine, state = setup
        assert ev(ctx, state, "allocated_array(&arr[0])") is False


class TestUninterpreted:
    def test_deterministic(self, setup):
        ctx, machine, state = setup
        a = ev(ctx, state, "mystery(3)")
        b = ev(ctx, state, "mystery(3)")
        assert a == b

    def test_distinguishes_arguments(self, setup):
        ctx, machine, state = setup
        values = {ev(ctx, state, f"mystery({i})") for i in range(20)}
        assert len(values) > 1

    def test_method_in_expression_is_ub(self, setup):
        ctx, machine, state = setup
        expr = parse_expression("lock(p)")
        with pytest.raises(UBSignal):
            eval_expr(EvalContext(ctx, state, 1, "main"), expr)
