"""Tests for the eight refinement strategies (§4.2).

Each strategy gets positive cases (the correspondence holds, the proof
verifies) and negative cases exercising the paper's two failure modes:
"Armada will either generate an error message indicating the problem or
generate an invalid proof [whose verification] will produce an error
message" (§2.2).
"""

import pytest

from repro.proofs.engine import verify_source


def run(source: str):
    return verify_source(source).outcomes[0]


def two_levels(low_body: str, high_body: str, recipe: str,
               decls: str = "var x: uint32;") -> str:
    return (
        f"level Low {{ {decls} void main() {{ {low_body} }} }}\n"
        f"level High {{ {decls} void main() {{ {high_body} }} }}\n"
        f"proof P {{ refinement Low High {recipe} }}\n"
    )


class TestWeakening:
    def test_identical_programs(self):
        outcome = run(two_levels("x := 1;", "x := 1;", "weakening"))
        assert outcome.success

    def test_equivalent_rewrite_bitmask_modulo(self):
        # The paper's §4.1.2 example.
        outcome = run(two_levels(
            "var y: uint32 := 0; y := x & 1;",
            "var y: uint32 := 0; y := x % 2;",
            "weakening",
        ))
        assert outcome.success

    def test_wrong_rewrite_fails_verification(self):
        outcome = run(two_levels(
            "var y: uint32 := 0; y := x & 3;",
            "var y: uint32 := 0; y := x % 2;",
            "weakening",
        ))
        assert not outcome.success
        assert "verification failed" in outcome.error

    def test_different_targets_rejected_structurally(self):
        outcome = run(two_levels(
            "x := 1;", "var y: uint32 := 0; y := 1;", "weakening"
        ))
        assert not outcome.success
        assert "correspondence" in outcome.error

    def test_assignment_to_somehow(self):
        outcome = run(two_levels(
            "x := x % 2 + 1;",
            "somehow modifies x ensures x <= 2;",
            "weakening",
        ))
        assert outcome.success

    def test_assignment_violating_somehow_post(self):
        outcome = run(two_levels(
            "x := 5;",
            "somehow modifies x ensures x <= 2;",
            "weakening",
        ))
        assert not outcome.success

    def test_guard_star_requires_nondet_strategy(self):
        outcome = run(two_levels(
            "if x > 0 { x := 1; }", "if (*) { x := 1; }", "weakening"
        ))
        assert not outcome.success
        assert "nondet_weakening" in outcome.error


class TestNondetWeakening:
    def test_guard_to_star(self):
        outcome = run(two_levels(
            "if x > 0 { x := 1; }", "if (*) { x := 1; }",
            "nondet_weakening",
        ))
        assert outcome.success

    def test_value_to_star(self):
        outcome = run(two_levels(
            "x := 3;", "x := *;", "nondet_weakening"
        ))
        assert outcome.success

    def test_witness_recorded_in_lemma(self):
        outcome = run(two_levels(
            "x := 3;", "x := *;", "nondet_weakening"
        ))
        rendered = outcome.script.render()
        assert "witness" in rendered

    def test_star_cannot_refine_concrete(self):
        outcome = run(two_levels(
            "if (*) { x := 1; }", "if x > 0 { x := 1; }",
            "nondet_weakening",
        ))
        assert not outcome.success


class TestTsoElim:
    DECLS = "var x: uint32; var mu: uint64;"
    LOW = (
        "var t: uint32 := 0; initialize_mutex(&mu); lock(&mu); "
        "t := x; x {op} t + 1; unlock(&mu);"
    )

    def _source(self, low_op, high_op, predicate='"mu == $me"'):
        return two_levels(
            self.LOW.format(op=low_op),
            self.LOW.format(op=high_op),
            f"tso_elim x {predicate}",
            decls=self.DECLS,
        )

    def test_lock_protected_elimination(self):
        outcome = run(self._source(":=", "::="))
        assert outcome.success

    def test_unprotected_access_fails(self):
        source = two_levels(
            "var t: uint32 := 0; t := x; x := t + 1;",
            "var t: uint32 := 0; t := x; x ::= t + 1;",
            'tso_elim x "mu == $me"',
            decls=self.DECLS,
        )
        outcome = run(source)
        assert not outcome.success
        assert "ownership" in outcome.error

    def test_missing_arguments_rejected(self):
        outcome = run(self._source(":=", "::=", predicate=""))
        assert not outcome.success

    def test_unknown_variable_rejected(self):
        source = two_levels(
            self.LOW.format(op=":="), self.LOW.format(op="::="),
            'tso_elim zzz "mu == $me"', decls=self.DECLS,
        )
        outcome = run(source)
        assert not outcome.success

    def test_nothing_changed_rejected(self):
        outcome = run(self._source(":=", ":="))
        assert not outcome.success
        assert "nothing to eliminate" in outcome.error


class TestReduction:
    DECLS = "var x: uint32; var mu: uint64;"
    BODY = (
        "var t: uint32 := 0; initialize_mutex(&mu); {open} lock(&mu); "
        "t := x; x := t + 1; unlock(&mu); {close}"
    )

    def _source(self, wrap_high=True, wrap_low=False):
        low = self.BODY.format(
            open="atomic {" if wrap_low else "",
            close="}" if wrap_low else "",
        )
        high = self.BODY.format(
            open="atomic {" if wrap_high else "",
            close="}" if wrap_high else "",
        )
        return two_levels(low, high, "reduction", decls=self.DECLS)

    def test_lock_protected_reduction(self):
        outcome = run(self._source())
        assert outcome.success

    def test_commutativity_lemmas_generated(self):
        outcome = run(self._source())
        names = [l.name for l in outcome.script.lemmas]
        assert any(n.startswith("Commute_") for n in names)
        assert any(n.startswith("PhaseDiscipline") for n in names)

    def test_no_removed_yields_rejected(self):
        outcome = run(self._source(wrap_high=False))
        assert not outcome.success

    def test_cannot_add_yield_points(self):
        outcome = run(self._source(wrap_high=False, wrap_low=True))
        assert not outcome.success

    def test_unprotected_region_fails_phase_check(self):
        # Two racy reads in one region are two non-movers: the shape
        # R* [N] L* cannot be established (at most one commit point).
        def level(name, body):
            return (
                f"level {name} {{ var x: uint32; var y: uint32; "
                f"void worker() {{ var t: uint32 := 0; "
                f"var u: uint32 := 0; {body} }} "
                "void main() { var a: uint64 := 0; "
                "a := create_thread worker(); x := 1; y := 1; join a; } }"
            )

        source = (
            level("Low", "t := x; u := y;")
            + level("High", "atomic { t := x; u := y; }")
            + "proof P { refinement Low High reduction }"
        )
        outcome = run(source)
        assert not outcome.success
        assert "PhaseDiscipline" in outcome.error


class TestAssumeIntro:
    def test_valid_enabling_condition(self):
        outcome = run(two_levels(
            "x := 5;", "x := 5; assume x == 5;", "assume_intro"
        ))
        assert outcome.success

    def test_false_enabling_condition(self):
        outcome = run(two_levels(
            "x := 5;", "x := 5; assume x == 6;", "assume_intro"
        ))
        assert not outcome.success
        assert "EnablingCondition" in outcome.error

    def test_no_assume_rejected(self):
        outcome = run(two_levels("x := 5;", "x := 5;", "assume_intro"))
        assert not outcome.success

    def test_bad_invariant_detected(self):
        source = two_levels(
            "x := 5;", "x := 5; assume x == 5;",
            'assume_intro invariant "x == 0"',
        )
        outcome = run(source)
        assert not outcome.success

    def test_rely_guarantee_predicate_checked(self):
        # x only grows; the rely holds.
        source = (
            "level Low { var x: uint32; "
            "void worker() { x ::= 1; } "
            "void main() { var a: uint64 := 0; var t: uint32 := 0; "
            "a := create_thread worker(); t := x; join a; } } "
            "level High { var x: uint32; "
            "void worker() { x ::= 1; } "
            "void main() { var a: uint64 := 0; var t: uint32 := 0; "
            "a := create_thread worker(); t := x; assume x >= t; "
            "join a; } } "
            'proof P { refinement Low High assume_intro '
            'rely_guarantee "old(x) <= x" }'
        )
        outcome = run(source)
        assert outcome.success

    def test_violated_rely_detected(self):
        source = (
            "level Low { var x: uint32; "
            "void worker() { x ::= 1; x ::= 0; } "
            "void main() { var a: uint64 := 0; "
            "a := create_thread worker(); join a; } } "
            "level High { var x: uint32; "
            "void worker() { x ::= 1; x ::= 0; } "
            "void main() { var a: uint64 := 0; "
            "a := create_thread worker(); assume true; join a; } } "
            'proof P { refinement Low High assume_intro '
            'rely_guarantee "old(x) <= x" }'
        )
        outcome = run(source)
        assert not outcome.success
        assert "RelyGuarantee" in outcome.error

    def test_path_lemmas_rendered(self):
        outcome = run(two_levels(
            "if x > 0 { x := 1; } else { x := 2; }",
            "if x > 0 { x := 1; } else { x := 2; } assume x <= 2;",
            "assume_intro",
        ))
        assert outcome.success
        assert any(
            l.name.startswith("PathLemma") for l in outcome.script.lemmas
        )


class TestVarIntroAndHiding:
    GHOST = "ghost var count: int;"

    def test_intro_ghost(self):
        source = (
            "level Low { var x: uint32; void main() { x := 1; } } "
            f"level High {{ var x: uint32; {self.GHOST} "
            "void main() { x := 1; count := count + 1; } } "
            "proof P { refinement Low High var_intro }"
        )
        assert run(source).success

    def test_intro_nothing_rejected(self):
        source = two_levels("x := 1;", "x := 1;", "var_intro")
        assert not run(source).success

    def test_intro_variable_never_assigned_rejected(self):
        source = (
            "level Low { var x: uint32; void main() { x := 1; } } "
            f"level High {{ var x: uint32; {self.GHOST} "
            "void main() { x := 1; } } "
            "proof P { refinement Low High var_intro }"
        )
        assert not run(source).success

    def test_intro_cannot_change_existing_statements(self):
        source = (
            "level Low { var x: uint32; void main() { x := 1; } } "
            f"level High {{ var x: uint32; {self.GHOST} "
            "void main() { x := 2; count := count + 1; } } "
            "proof P { refinement Low High var_intro }"
        )
        assert not run(source).success

    def test_hide_ghost(self):
        source = (
            f"level Low {{ var x: uint32; {self.GHOST} "
            "void main() { x := 1; count := count + 1; } } "
            "level High { var x: uint32; void main() { x := 1; } } "
            "proof P { refinement Low High var_hiding }"
        )
        assert run(source).success

    def test_hide_still_read_rejected(self):
        source = (
            "level Low { var x: uint32; var y: uint32; "
            "void main() { y := 1; x := y; } } "
            "level High { var x: uint32; void main() { x := 1; } } "
            "proof P { refinement Low High var_hiding }"
        )
        outcome = run(source)
        assert not outcome.success

    def test_hide_array_writes(self):
        source = (
            "level Low { var a: uint32[2]; var x: uint32; "
            "void main() { var i: uint32 := 0; a[i] := 1; x := 2; } } "
            "level High { var x: uint32; "
            "void main() { var i: uint32 := 0; x := 2; } } "
            "proof P { refinement Low High var_hiding }"
        )
        assert run(source).success


class TestCombining:
    def test_atomic_block_to_somehow(self):
        source = two_levels(
            "atomic { x := x + 1; x := x + 1; }",
            "somehow modifies x ensures x == old(x) + 2;",
            "combining",
        )
        assert run(source).success

    def test_wrong_aggregate_effect(self):
        # The outcome must be observable for the whole-program check to
        # distinguish the aggregate effects.
        source = two_levels(
            "atomic { x := x + 1; x := x + 1; } print_uint32(x);",
            "somehow modifies x ensures x == old(x) + 3; "
            "print_uint32(x);",
            "combining",
        )
        assert not run(source).success

    def test_prefix_lemmas_generated(self):
        source = two_levels(
            "atomic { x := x + 1; x := x + 1; }",
            "somehow modifies x ensures x == old(x) + 2;",
            "combining",
        )
        outcome = run(source)
        assert any(
            l.name.startswith("Combine_") for l in outcome.script.lemmas
        )

    def test_non_atomic_mismatch_rejected(self):
        source = two_levels(
            "x := x + 1; x := x + 1;",
            "somehow modifies x ensures x == old(x) + 2;",
            "combining",
        )
        outcome = run(source)
        assert not outcome.success


class TestRegistry:
    def test_unknown_strategy_reported(self):
        outcome = run(two_levels("x := 1;", "x := 1;", "warp_drive"))
        assert not outcome.success
        assert "unknown proof strategy" in outcome.error

    def test_all_nine_strategies_registered(self):
        from repro.strategies.registry import available_strategies

        assert set(available_strategies()) >= {
            "weakening", "nondet_weakening", "tso_elim", "reduction",
            "assume_intro", "combining", "var_intro", "var_hiding",
            "regular_to_atomic",
        }


class TestJobFingerprints:
    """Cache-collision regression fence.

    Every engine option that can change a verdict must be part of
    ``_job_fingerprint()``: PR 7's model-replay bug was exactly a
    missing dimension (verdicts cached under one memory model replayed
    under another).  This matrix enumerates the verdict-bearing
    configuration axes — POR mode × memory model × atomic — and
    requires every combination to fingerprint distinctly, so adding an
    axis without fingerprinting it fails here, not in a user's cache.
    """

    @staticmethod
    def _engine(**kwargs):
        from repro.lang.frontend import check_program
        from repro.proofs.engine import ProofEngine

        checked = check_program(
            "level L { var x: uint32; void main() { x := 1; } }"
        )
        return ProofEngine(checked, **kwargs)

    def test_every_option_combination_is_distinct(self):
        fingerprints = {}
        for por in (False, True, "dynamic"):
            for memory_model in ("sc", "tso", "ra"):
                for atomic in (False, True):
                    engine = self._engine(
                        por=por, memory_model=memory_model,
                        atomic=atomic,
                    )
                    key = (por, memory_model, atomic)
                    fingerprints[key] = engine._job_fingerprint()
        assert len(set(fingerprints.values())) == len(fingerprints), (
            "job fingerprints collide across verdict-bearing options"
        )

    def test_max_states_is_fingerprinted(self):
        a = self._engine(max_states=100)._job_fingerprint()
        b = self._engine(max_states=200)._job_fingerprint()
        assert a != b

    def test_compiled_is_deliberately_not_fingerprinted(self):
        """The compiled stepper is bit-identical to the interpreter, so
        toggling it must NOT invalidate the cache — a deliberate
        exception to the matrix above."""
        a = self._engine(compiled=True)._job_fingerprint()
        b = self._engine(compiled=False)._job_fingerprint()
        assert a == b

    def test_proof_key_inherits_the_atomic_dimension(self):
        """The outcome-cache key must separate atomic from non-atomic
        runs: collapsed scripts discharge different obligation sets."""
        base = self._engine(atomic=False)
        lifted = self._engine(atomic=True)
        assert base._job_fingerprint() != lifted._job_fingerprint()
        assert "atomic=off" in base._job_fingerprint()
        assert "atomic=on" in lifted._job_fingerprint()
