"""Tests for AST utilities: equality, printing, substitution."""

from repro.lang import asts as ast
from repro.lang.astutil import (
    expr_equal,
    expr_to_str,
    free_vars,
    stmt_to_str,
    substitute,
)
from repro.lang.parser import parse_expression, parse_program


def expr(text: str) -> ast.Expr:
    return parse_expression(text)


class TestExprEqual:
    def test_identical_literals(self):
        assert expr_equal(expr("42"), expr("42"))
        assert not expr_equal(expr("42"), expr("43"))

    def test_variables(self):
        assert expr_equal(expr("x"), expr("x"))
        assert not expr_equal(expr("x"), expr("y"))

    def test_binary_structure(self):
        assert expr_equal(expr("a + b * c"), expr("a + b * c"))
        assert not expr_equal(expr("a + b"), expr("b + a"))
        assert not expr_equal(expr("a + b"), expr("a - b"))

    def test_ignores_locations(self):
        a = parse_expression("x  +  1")
        b = parse_expression("x + 1")
        assert expr_equal(a, b)

    def test_pointer_forms(self):
        assert expr_equal(expr("*p"), expr("*p"))
        assert expr_equal(expr("&a.f"), expr("&a.f"))
        assert not expr_equal(expr("*p"), expr("&p"))

    def test_nondet_equals_nondet(self):
        assert expr_equal(expr("*"), expr("*"))

    def test_calls(self):
        assert expr_equal(expr("f(1, x)"), expr("f(1, x)"))
        assert not expr_equal(expr("f(1)"), expr("g(1)"))
        assert not expr_equal(expr("f(1)"), expr("f(1, 2)"))

    def test_quantifiers(self):
        a = expr("forall i: int . i >= 0")
        b = expr("forall i: int . i >= 0")
        c = expr("forall j: int . j >= 0")
        assert expr_equal(a, b)
        assert not expr_equal(a, c)  # structural, not alpha-equivalent

    def test_old(self):
        assert expr_equal(expr("old(x)"), expr("old(x)"))
        assert not expr_equal(expr("old(x)"), expr("x"))


class TestPrinting:
    def test_roundtrip_simple(self):
        for text in ("x + 1", "a && b || c", "f(x, y)", "s.next",
                     "a[i]", "*p", "&v", "old(log)", "[1, 2, 3]"):
            printed = expr_to_str(expr(text))
            assert expr_equal(expr(printed), expr(text)), (text, printed)

    def test_precedence_parens(self):
        printed = expr_to_str(expr("(a + b) * c"))
        assert expr_equal(expr(printed), expr("(a + b) * c"))

    def test_nondet_prints_star(self):
        assert expr_to_str(expr("*")) == "*"

    def test_statement_rendering(self):
        program = parse_program(
            "level L { void main() { x ::= 1; assert x > 0; } }"
        )
        body = program.levels[0].methods[0].body
        rendered = stmt_to_str(body)
        assert "x ::= 1;" in rendered
        assert "assert (x > 0);" in rendered or "assert x > 0;" in rendered

    def test_somehow_rendering(self):
        program = parse_program(
            "level L { void main() { somehow modifies s ensures p(s); } }"
        )
        stmt = program.levels[0].methods[0].body.stmts[0]
        text = stmt_to_str(stmt)
        assert "somehow" in text and "modifies s" in text


class TestFreeVarsAndSubstitution:
    def test_free_vars(self):
        assert free_vars(expr("x + y * x")) == {"x", "y"}

    def test_bound_vars_excluded(self):
        assert free_vars(expr("forall i: int . i < n")) == {"n"}

    def test_none_not_free(self):
        assert free_vars(expr("opt == None")) == {"opt"}

    def test_substitute_var(self):
        result = substitute(expr("x + y"), {"x": expr("z * 2")})
        assert expr_equal(result, expr("z * 2 + y"))

    def test_substitute_avoids_capture(self):
        result = substitute(
            expr("forall i: int . i < n"), {"i": expr("0")}
        )
        assert expr_equal(result, expr("forall i: int . i < n"))

    def test_substitute_shares_untouched(self):
        original = expr("a + b")
        result = substitute(original, {"zzz": expr("1")})
        assert result is original
