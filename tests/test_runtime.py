"""Tests for the reference runtime (schedulers, determinism)."""

import pytest

from repro.errors import ExecutionError
from repro.lang.frontend import check_level
from repro.machine.translator import translate_level
from repro.runtime.interpreter import (
    Interpreter,
    RandomScheduler,
    RoundRobinScheduler,
    run_level,
)


def machine_for(source: str):
    return translate_level(check_level("level L { " + source + " }"))


class TestRoundRobin:
    def test_deterministic(self):
        machine = machine_for(
            "var x: uint32; void main() { x := 3; var t: uint32 := 0; "
            "t := x; print_uint32(t); }"
        )
        a = run_level(machine)
        b = run_level(machine)
        assert a.log == b.log == (3,)
        assert a.steps_taken == b.steps_taken

    def test_drains_eagerly(self):
        # Write-back-first: a spin on another thread's flag terminates.
        machine = machine_for(
            "var flag: uint32; void worker() { flag := 1; } "
            "void main() { var h: uint64 := 0; var f: uint32 := 0; "
            "h := create_thread worker(); "
            "while f == 0 { f := flag; } join h; print_uint32(f); }"
        )
        result = run_level(machine)
        assert result.log == (1,)

    def test_rotates_threads(self):
        machine = machine_for(
            "var x: uint32; var y: uint32; "
            "void worker() { y ::= 1; } "
            "void main() { var h: uint64 := 0; "
            "h := create_thread worker(); x ::= 1; join h; }"
        )
        result = run_level(machine)
        assert result.termination_kind == "normal"


class TestRandomScheduler:
    def test_seed_reproducibility(self):
        machine = machine_for(
            "var x: uint32; void worker() { x := 1; } "
            "void main() { var h: uint64 := 0; var t: uint32 := 0; "
            "h := create_thread worker(); t := x; join h; "
            "print_uint32(t); }"
        )
        a = run_level(machine, seed=42, max_steps=500_000)
        b = run_level(machine, seed=42, max_steps=500_000)
        assert a.log == b.log and a.steps_taken == b.steps_taken

    def test_different_seeds_can_differ(self):
        machine = machine_for(
            "var x: uint32; void worker() { x ::= 1; } "
            "void main() { var h: uint64 := 0; var t: uint32 := 0; "
            "h := create_thread worker(); t := x; join h; "
            "print_uint32(t); }"
        )
        logs = {
            run_level(machine, seed=s, max_steps=500_000).log
            for s in range(12)
        }
        assert logs <= {(0,), (1,)}
        assert len(logs) == 2  # races observed across seeds


class TestLimits:
    def test_step_budget_enforced(self):
        machine = machine_for("void main() { while true { } }")
        with pytest.raises(ExecutionError):
            Interpreter(machine, RoundRobinScheduler(), max_steps=100).run()

    def test_deadlock_returns_incomplete(self):
        machine = machine_for("void main() { assume false; }")
        result = Interpreter(machine, RoundRobinScheduler()).run()
        assert not result.completed

    def test_ub_terminates_run(self):
        machine = machine_for(
            "void main() { var a: uint32 := 1; var b: uint32 := 0; "
            "a := a / b; }"
        )
        result = run_level(machine)
        assert result.termination_kind == "undefined_behavior"
