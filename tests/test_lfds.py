"""Tests for the liblfds substrate (§6.4 baseline) and the Armada port."""

import pytest

from repro.lfds import (
    BoundedSPSCQueue,
    BoundedSPSCQueueModulo,
    QueueEmptyError,
    QueueFullError,
    single_thread_throughput,
    two_thread_throughput,
)
from repro.lfds.armada_port import compile_port, throughput

VARIANTS = [BoundedSPSCQueue, BoundedSPSCQueueModulo]


@pytest.mark.parametrize("cls", VARIANTS)
class TestQueueBehaviour:
    def test_fifo_order(self, cls):
        q = cls(8)
        for i in range(5):
            q.enqueue(i)
        assert [q.dequeue() for _ in range(5)] == list(range(5))

    def test_capacity_is_size_minus_one(self, cls):
        q = cls(8)
        assert q.capacity == 7
        for i in range(7):
            assert q.try_enqueue(i)
        assert not q.try_enqueue(99)
        assert q.is_full()

    def test_empty_dequeue(self, cls):
        q = cls(4)
        ok, value = q.try_dequeue()
        assert not ok and value is None
        with pytest.raises(QueueEmptyError):
            q.dequeue()

    def test_full_enqueue_raises(self, cls):
        q = cls(2)
        q.enqueue(1)
        with pytest.raises(QueueFullError):
            q.enqueue(2)

    def test_wraparound(self, cls):
        q = cls(4)
        for round_no in range(10):
            for i in range(3):
                q.enqueue((round_no, i))
            for i in range(3):
                assert q.dequeue() == (round_no, i)
        assert q.is_empty()

    def test_len_tracks_occupancy(self, cls):
        q = cls(8)
        assert len(q) == 0
        q.enqueue(1)
        q.enqueue(2)
        assert len(q) == 2
        q.dequeue()
        assert len(q) == 1

    def test_size_must_be_power_of_two(self, cls):
        with pytest.raises(ValueError):
            cls(3)
        with pytest.raises(ValueError):
            cls(1)


class TestVariantsAgree:
    def test_same_trace(self):
        a = BoundedSPSCQueue(16)
        b = BoundedSPSCQueueModulo(16)
        import random

        rng = random.Random(7)
        for _ in range(2000):
            if rng.random() < 0.55:
                v = rng.randrange(1000)
                assert a.try_enqueue(v) == b.try_enqueue(v)
            else:
                assert a.try_dequeue() == b.try_dequeue()
            assert len(a) == len(b)


class TestConcurrent:
    def test_two_thread_transfer(self):
        result = two_thread_throughput(BoundedSPSCQueue, 64, items=5_000)
        assert result.operations == 10_000
        assert result.ops_per_second > 0

    def test_single_thread_harness(self):
        result = single_thread_throughput(BoundedSPSCQueue, 512, 10_000)
        assert result.operations >= 10_000


class TestArmadaPort:
    @pytest.mark.parametrize("mode", ["sc", "conservative", "tso"])
    def test_demo_main(self, mode):
        assert compile_port(mode).run() == [41, 42]

    def test_port_matches_reference_queue(self):
        namespace = compile_port("sc").load()
        reference = BoundedSPSCQueueModulo(512)
        import random

        rng = random.Random(3)
        for _ in range(3000):
            if rng.random() < 0.6:
                v = rng.randrange(1 << 30)
                ours = namespace["try_enqueue"](v)
                theirs = reference.try_enqueue(v)
                assert bool(ours) == theirs
            else:
                got = namespace["try_dequeue"]()
                ok, value = reference.try_dequeue()
                if ok:
                    assert got == value
                else:
                    assert got == 0

    def test_throughput_harness(self):
        result = throughput("sc", operations=5_000)
        assert result.operations >= 5_000
        assert result.ops_per_second > 0
