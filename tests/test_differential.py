"""Differential smoke test: optimisation layers must not change verdicts.

Two of the repo's performance features are *supposed* to be observably
pure accelerations — ample-set partial-order reduction in the explorer,
and the farm's content-addressed proof cache.  One parametrized test
runs the TSP refinement chain (``examples/running_example.arm``) both
ways along each dimension and diffs everything a user can see: final
outcomes, UB reasons, invariant verdicts, per-lemma verdict sequences,
and the composed chain.  Any divergence means the "optimisation" is
changing answers, which is a soundness bug, not a perf regression.
"""

import os

import pytest

from repro.explore.explorer import Explorer
from repro.farm import FarmConfig, VerificationFarm
from repro.lang.frontend import check_program
from repro.machine.translator import translate_level
from repro.proofs.engine import ProofEngine

EXAMPLE = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "examples", "running_example.arm",
)


def _checked():
    with open(EXAMPLE, encoding="utf-8") as handle:
        return check_program(handle.read(), EXAMPLE)


def _explorer_fingerprint(result):
    """Everything a user can observe from one exploration."""
    return {
        "outcomes": sorted(
            (kind, tuple(log)) for kind, log in result.final_outcomes
        ),
        "ub": sorted(result.ub_reasons),
        "assert_failures": result.assert_failures,
        "violations": sorted(
            v.invariant_name for v in result.violations
        ),
        "hit_state_budget": result.hit_state_budget,
    }


def _chain_fingerprint(outcome):
    """Everything a user can observe from one verification run."""
    rows = []
    for proof in outcome.outcomes:
        lemmas = []
        if proof.script is not None:
            lemmas = [
                (lemma.name,
                 lemma.verdict.status if lemma.verdict else None)
                for lemma in proof.script.lemmas
            ]
        rows.append((proof.proof_name, proof.strategy, proof.success,
                     proof.error, tuple(lemmas)))
    return {
        "success": outcome.success,
        "chain": list(outcome.chain),
        "chain_error": outcome.chain_error,
        "proofs": sorted(rows),
    }


@pytest.mark.parametrize("dimension", ["explorer-por", "farm-cache"])
def test_acceleration_layers_preserve_verdicts(dimension, tmp_path):
    if dimension == "explorer-por":
        checked = _checked()
        for level in checked.program.levels:
            machine = translate_level(checked.contexts[level.name])
            baseline = Explorer(machine, max_states=200_000).explore()
            reduced = Explorer(
                machine, max_states=200_000, por=True
            ).explore()
            assert (_explorer_fingerprint(baseline)
                    == _explorer_fingerprint(reduced)), level.name
            # And the reduction must actually be a reduction (the TSP
            # implementation level has independent thread steps).
            assert reduced.states_visited <= baseline.states_visited
    else:  # farm-cache: a cold run and a warm run must agree exactly
        cache_dir = str(tmp_path / "proof-cache")
        fingerprints = []
        summaries = []
        for _ in ("cold", "warm"):
            farm = VerificationFarm(FarmConfig(cache_dir=cache_dir))
            engine = ProofEngine(_checked(), farm=farm)
            fingerprints.append(_chain_fingerprint(engine.run_all()))
            summaries.append(farm.summary())
        cold, warm = fingerprints
        assert cold == warm
        assert cold["success"]
        cold_summary, warm_summary = summaries
        assert cold_summary.cache_hits == 0
        assert warm_summary.jobs == cold_summary.jobs
        # Warm run must serve the cacheable obligations from disk.
        assert warm_summary.cache_hits > 0
